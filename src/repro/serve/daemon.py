"""The asyncio HTTP front end of the compile service.

:class:`ReticleDaemon` binds a TCP port (or unix socket) and speaks a
deliberately small slice of HTTP/1.1 over raw asyncio streams — no
framework, no dependency, keep-alive supported:

* ``POST /compile`` — a batch of compile requests, answered as a
  batch of results.  The body is ``{"requests": [{...}, ...]}`` (or a
  single bare request object); each item carries ``program`` (IR
  text), optional ``target``, optional ``options``.
* ``GET /healthz`` — liveness + admission-window snapshot.
* ``GET /stats`` — the service's counters/gauges/latency summaries.
* ``POST /shutdown`` — graceful stop (drains in-flight work).

Admission control: the daemon admits at most ``queue_limit``
*outstanding* compile items (queued + running, across all
connections).  A batch that would overflow the window is rejected
whole with ``503`` and a ``Retry-After`` hint, counted as
``service.rejected`` — backpressure is explicit, not an unbounded
queue silently growing until the process dies.

Execution: admitted items run on a ``ThreadPoolExecutor`` of
``workers`` threads (compiles are CPU-bound Python, but the pool still
overlaps the pickling/disk/cache I/O and keeps the event loop free to
answer health checks while compiling).  Items of one batch compile
concurrently; the batch answers when all its items have.

At startup the daemon sweeps stale ``*.tmp`` litter out of the shared
cache directory (:meth:`CompileCache.sweep`) — the one reclamation
point for temp files leaked by crashed writers.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.errors import ReticleError
from repro.obs import TraceContext, Tracer, new_trace_id, valid_trace_id
from repro.serve.service import (
    CompileRequest,
    CompileResponse,
    CompileService,
)
from repro.utils.pool import resolve_executor

#: Request/response header carrying the request's trace identity.
TRACE_HEADER = "X-Reticle-Trace-Id"

#: Hard ceiling on accepted request bodies (64 MiB of IR text is far
#: beyond any device-filling program; anything larger is a mistake or
#: abuse and is refused before buffering).
MAX_BODY_BYTES = 64 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    503: "Service Unavailable",
}


def parse_size(text: str) -> int:
    """A byte count from a human size string (``"256M"``, ``"2G"``).

    Bare integers are bytes; suffixes K/M/G are binary (1024-based),
    case-insensitive.  Raises :class:`ReticleError` on junk.
    """
    raw = text.strip()
    if not raw:
        raise ReticleError("empty size")
    multiplier = 1
    suffix = raw[-1].upper()
    if suffix in ("K", "M", "G"):
        multiplier = {"K": 1024, "M": 1024**2, "G": 1024**3}[suffix]
        raw = raw[:-1]
    try:
        value = int(raw)
    except ValueError as error:
        raise ReticleError(
            f"bad size {text!r} (expected e.g. 1048576, 256M, 2G)"
        ) from error
    if value < 0:
        raise ReticleError(f"size must be non-negative: {text!r}")
    return value * multiplier


class ReticleDaemon:
    """One server: service core + admission window + worker pool."""

    def __init__(
        self,
        service: Optional[CompileService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        workers: int = 4,
        queue_limit: int = 64,
        executor: str = "thread",
        max_tasks_per_worker: int = 0,
    ) -> None:
        if workers < 1:
            raise ReticleError("serve needs at least one worker")
        if queue_limit < 1:
            raise ReticleError("queue limit must be at least 1")
        self.service = service if service is not None else CompileService()
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.workers = workers
        self.queue_limit = queue_limit
        self.executor = resolve_executor(executor)
        # The thread pool stays under both executors: with
        # ``--executor process`` it only bridges the event loop to the
        # blocking pipe round-trip, the CPU work happens in the worker
        # processes of the ProcessCompilePool.
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="reticle-compile"
        )
        self._procpool = None
        if self.executor == "process":
            from repro.serve.procpool import ProcessCompilePool

            self._procpool = ProcessCompilePool(
                workers=workers,
                warm=(("request", "ultrascale", ()),),
                cache_dir=self.service.cache.cache_dir,
                tracer=self.service.tracer,
                max_tasks_per_worker=max_tasks_per_worker,
            )
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._connections: set = set()

    # -- admission ---------------------------------------------------

    def _admit(self, items: int) -> bool:
        """Reserve ``items`` slots of the admission window, or refuse."""
        with self._inflight_lock:
            if self._inflight + items > self.queue_limit:
                return False
            self._inflight += items
            return True

    def _release(self, items: int) -> None:
        with self._inflight_lock:
            self._inflight -= items

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    # -- HTTP plumbing ----------------------------------------------

    @staticmethod
    def _response_bytes(
        status: int, payload: Dict[str, object], extra_headers: str = ""
    ) -> bytes:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra_headers}"
            "\r\n"
        )
        return head.encode("ascii") + body

    @staticmethod
    def _text_response_bytes(
        status: int,
        text: str,
        content_type: str = "text/plain; version=0.0.4; charset=utf-8",
    ) -> bytes:
        """A non-JSON response (the Prometheus exposition)."""
        body = text.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        )
        return head.encode("ascii") + body

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """One HTTP request off the stream, or None at clean EOF."""
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.IncompleteReadError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ReticleError("malformed HTTP request line")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ReticleError("request body too large")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    # -- request handling -------------------------------------------

    async def _handle_compile(
        self, body: bytes, headers: Dict[str, str]
    ) -> Tuple[int, Dict, Optional[str]]:
        """One compile batch; returns (status, payload, trace id).

        The request's trace ID comes from the ``X-Reticle-Trace-Id``
        header when the client sent (a valid) one, else is minted
        here.  Batch item ``i`` compiles under the derived ID
        ``<base>.<i>`` (item 0 uses the base), so one batch stays one
        greppable trace family.  The base ID is echoed in the JSON
        payload and the response header, success or failure.
        """
        claimed = headers.get(TRACE_HEADER.lower())
        if claimed is not None and not valid_trace_id(claimed):
            self.service.tracer.count("service.bad_requests")
            return 400, {
                "ok": False,
                "error": (
                    f"invalid {TRACE_HEADER} header (want 1-128 chars "
                    "of [A-Za-z0-9_.:-])"
                ),
            }, None
        trace = TraceContext.new(claimed)
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError):
            return 400, {
                "ok": False,
                "error": "body is not valid JSON",
                "trace_id": trace.trace_id,
            }, trace.trace_id
        if isinstance(payload, dict) and "requests" in payload:
            raw_items = payload["requests"]
        else:
            raw_items = [payload]
        if not isinstance(raw_items, list) or not raw_items:
            return 400, {
                "ok": False,
                "error": "'requests' must be a non-empty list",
                "trace_id": trace.trace_id,
            }, trace.trace_id
        try:
            requests = [CompileRequest.from_dict(item) for item in raw_items]
        except ReticleError as error:
            self.service.tracer.count("service.bad_requests")
            return 400, {
                "ok": False,
                "error": str(error),
                "trace_id": trace.trace_id,
            }, trace.trace_id

        if not self._admit(len(requests)):
            self.service.tracer.count("service.rejected", len(requests))
            return 503, {
                "ok": False,
                "error": (
                    f"admission window full "
                    f"({self.inflight}/{self.queue_limit} in flight); "
                    "retry later"
                ),
                "trace_id": trace.trace_id,
            }, trace.trace_id
        loop = asyncio.get_running_loop()
        admitted_at = time.perf_counter()

        def run_one(request: CompileRequest, item_trace_id: str):
            # Queue wait = admission to a worker actually starting.
            ctx = TraceContext(
                trace_id=item_trace_id,
                queue_wait_s=time.perf_counter() - admitted_at,
            )
            try:
                if self._procpool is not None:
                    return self._compile_via_pool(request, ctx)
                return self.service.compile_request(request, ctx=ctx)
            finally:
                self._release(1)

        self.service.tracer.count("service.batches")
        responses = await asyncio.gather(
            *(
                loop.run_in_executor(
                    self._pool, run_one, request, trace.item(index)
                )
                for index, request in enumerate(requests)
            )
        )
        results = [response.to_dict() for response in responses]
        return 200, {
            "ok": all(result["ok"] for result in results),
            "results": results,
            "trace_id": trace.trace_id,
        }, trace.trace_id

    def _compile_via_pool(
        self, request: CompileRequest, ctx: TraceContext
    ) -> CompileResponse:
        """One request through the process executor.

        The compile half runs in a worker process; the worker's wire
        result carries the response plus its private tracer, which the
        parent-side :meth:`CompileService.finish_request` merges so
        the request is accounted exactly as under the thread executor.
        A worker that crashes twice on the task (retried once by the
        pool) becomes a typed error *response* — the daemon answers,
        it does not die.
        """
        from repro.serve.procpool import RequestTask

        start = time.perf_counter()
        try:
            wire = self._procpool.submit(
                RequestTask(
                    program=request.program,
                    target=request.target,
                    options=request.options,
                    cache_dir=self.service.cache.cache_dir,
                    trace_id=ctx.trace_id,
                    queue_wait_s=ctx.queue_wait_s,
                )
            ).result()
            response, tracer = wire.payload, wire.tracer
        except ReticleError as error:  # worker crashed, retry exhausted
            tracer = Tracer(trace_id=ctx.trace_id)
            response = CompileResponse(
                ok=False, error=str(error), trace_id=ctx.trace_id
            )
        # Parent-observed latency: includes the pipe round-trip, so
        # service.latency_s reflects what the client actually waited.
        latency = time.perf_counter() - start
        return self.service.finish_request(
            request, response, ctx, tracer, latency
        )

    def _healthz(self) -> Dict[str, object]:
        payload = {
            "status": "ok",
            "inflight": self.inflight,
            "queue_limit": self.queue_limit,
            "workers": self.workers,
            "executor": self.executor,
        }
        if self._procpool is not None:
            payload["busy_workers"] = self._procpool.busy_workers
            payload["worker_crashes"] = self._procpool.crashes
        return payload

    def _daemon_gauges(self) -> Dict[str, float]:
        """Transport-level gauges joined into the /metrics exposition."""
        gauges = {
            "service_queue_depth": float(self.inflight),
            "service_queue_limit": float(self.queue_limit),
            "service_workers": float(self.workers),
        }
        if self._procpool is not None:
            gauges.update(self._procpool.saturation_gauges())
        else:
            # The thread executor reports the same saturation family:
            # busy == inflight clamped to the pool, crashes impossible.
            gauges.update(
                {
                    "service_busy_workers": float(
                        min(self.inflight, self.workers)
                    ),
                    "service_inflight": float(self.inflight),
                    "service_worker_crashes": 0.0,
                    "service_worker_recycled": 0.0,
                }
            )
        return gauges

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except ReticleError as error:
                    writer.write(
                        self._response_bytes(
                            400, {"ok": False, "error": str(error)}
                        )
                    )
                    break
                if request is None:
                    break
                method, path, headers, body = request
                status, payload, extra = 404, {"ok": False, "error": "not found"}, ""
                raw_response: Optional[bytes] = None
                if path == "/compile" and method == "POST":
                    status, payload, trace_id = await self._handle_compile(
                        body, headers
                    )
                    if trace_id is not None:
                        extra += f"{TRACE_HEADER}: {trace_id}\r\n"
                    if status == 503:
                        extra += "Retry-After: 1\r\n"
                elif path == "/healthz" and method == "GET":
                    status, payload = 200, self._healthz()
                elif path == "/stats" and method == "GET":
                    status, payload = 200, self.service.stats()
                elif path == "/metrics" and method == "GET":
                    raw_response = self._text_response_bytes(
                        200, self.service.metrics_text(self._daemon_gauges())
                    )
                elif path == "/debug/flightrecorder" and method == "GET":
                    status, payload = 200, self.service.flight.dump()
                elif path == "/shutdown" and method == "POST":
                    status, payload = 200, {"ok": True, "stopping": True}
                elif path in (
                    "/compile",
                    "/shutdown",
                    "/healthz",
                    "/stats",
                    "/metrics",
                    "/debug/flightrecorder",
                ):
                    status, payload = 405, {
                        "ok": False,
                        "error": f"method {method} not allowed on {path}",
                    }
                if raw_response is not None:
                    writer.write(raw_response)
                else:
                    writer.write(self._response_bytes(status, payload, extra))
                await writer.drain()
                if path == "/shutdown" and method == "POST" and status == 200:
                    self.stop()
                    break
                if headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            # Shutdown cancelled us while parked on a keep-alive read.
            # Swallow rather than re-raise: the streams machinery calls
            # task.exception() on this handler's task, and a propagated
            # CancelledError would be logged as a callback error.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- lifecycle ---------------------------------------------------

    async def start(self) -> None:
        """Bind and start serving (non-blocking; see :meth:`run`)."""
        # Reclaim tmp litter from crashed writers before the first
        # request can race a fresh writer's live tmp file.
        self.service.cache.sweep(tracer=self.service.tracer)
        self._stopped = asyncio.Event()
        if self.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.unix_path
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port
            )
            # With port 0 the kernel picked; publish the real one.
            for sock in self._server.sockets:
                if sock.family in (socket.AF_INET, socket.AF_INET6):
                    self.port = sock.getsockname()[1]
                    break

    def stop(self) -> None:
        """Request a graceful stop (idempotent, callable from handlers)."""
        if self._stopped is not None:
            self._stopped.set()

    async def run(self) -> None:
        """Serve until :meth:`stop` (or cancellation), then drain."""
        if self._server is None:
            await self.start()
        assert self._stopped is not None
        try:
            await self._stopped.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            # Idle keep-alive connections sit parked in readline();
            # cancel them so the loop closes without orphaned tasks.
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(
                    *self._connections, return_exceptions=True
                )
            self._pool.shutdown(wait=True)
            if self._procpool is not None:
                # Graceful drain: every admitted task has finished by
                # now (the thread pool drained), so the workers exit
                # cleanly instead of being killed mid-compile.
                self._procpool.shutdown(wait=True)

    @property
    def address(self) -> str:
        """The reachable address, for humans and ready files."""
        if self.unix_path is not None:
            return f"unix:{self.unix_path}"
        return f"http://{self.host}:{self.port}"


class DaemonThread:
    """An in-process daemon on a background thread (tests, loadgen).

    Starts the asyncio loop on its own thread, waits until the socket
    is bound, and exposes ``base_url``/``port`` plus a blocking
    :meth:`stop`.  Usable as a context manager.
    """

    def __init__(self, daemon: Optional[ReticleDaemon] = None, **kwargs) -> None:
        self.daemon = daemon if daemon is not None else ReticleDaemon(**kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def __enter__(self) -> "DaemonThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def start(self, timeout: float = 10.0) -> "DaemonThread":
        def runner() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.daemon.start())
                self._ready.set()
                loop.run_until_complete(self.daemon.run())
            except BaseException as error:  # noqa: BLE001 - surfaced below
                self._error = error
                self._ready.set()
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="reticle-daemon", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ReticleError("daemon did not come up in time")
        if self._error is not None:
            raise ReticleError(f"daemon failed to start: {self._error}")
        return self

    @property
    def port(self) -> int:
        return self.daemon.port

    @property
    def base_url(self) -> str:
        return self.daemon.address

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and not self._loop.is_closed():
            try:
                self._loop.call_soon_threadsafe(self.daemon.stop)
            except RuntimeError:
                pass  # loop already closing
        if self._thread is not None:
            self._thread.join(timeout)


def serve_main(args) -> int:
    """The ``reticle serve`` entry point (argparse namespace in)."""
    import sys

    from repro.passes import CompileCache
    from repro.obs import FlightRecorder, Tracer

    budget = (
        parse_size(args.cache_budget) if args.cache_budget else None
    )
    cache = CompileCache(
        cache_dir=args.cache_dir,
        max_disk_bytes=budget,
    )
    log_stream = None
    log_handle = None
    if getattr(args, "log_json", None):
        if args.log_json == "-":
            log_stream = sys.stdout
        else:
            log_handle = open(args.log_json, "a")
            log_stream = log_handle
    service = CompileService(
        cache=cache,
        tracer=Tracer(),
        window=getattr(args, "window", 256),
        flight=FlightRecorder(
            keep_slowest=getattr(args, "flight_slowest", 16),
            keep_failed=getattr(args, "flight_failed", 32),
        ),
        log_stream=log_stream,
    )
    daemon = ReticleDaemon(
        service=service,
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        workers=args.workers,
        queue_limit=args.queue_limit,
        executor=getattr(args, "executor", "thread"),
        max_tasks_per_worker=getattr(args, "max_tasks_per_worker", 0),
    )

    async def main() -> None:
        await daemon.start()
        print(f"reticle serve: listening on {daemon.address}", flush=True)
        if args.ready_file:
            with open(args.ready_file, "w") as handle:
                handle.write(daemon.address + "\n")
        await daemon.run()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    finally:
        if log_handle is not None:
            log_handle.close()
    return 0
