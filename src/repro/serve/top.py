"""``reticle top`` and ``reticle flightrecorder``: operator views.

``reticle top <addr>`` polls a daemon's ``GET /metrics`` exposition
and renders a live terminal summary — throughput, rolling p50/p95,
error rate, cache hit ratio, queue depth, executor saturation
(busy/total workers, inflight, crash count), and a per-stage time
breakdown — using the same :func:`~repro.obs.expo.parse_prometheus`
parser the tests pin, so the view can never drift from what the
endpoint actually serves.  Rates are computed client-side from the
delta between two consecutive scrapes; the first frame (no delta yet)
shows cumulative values.

``reticle flightrecorder <addr>`` fetches ``GET /debug/flightrecorder``
and prints either a one-line-per-record summary or (``--json``) the
full dump — every retained span, event, and counter of the slowest
and failed requests.

Both are pure functions over parsed scrapes plus a thin polling loop,
so the rendering is unit-testable without a network.
"""

from __future__ import annotations

import http.client
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ReticleError
from repro.obs.expo import MetricFamily, parse_prometheus


def normalize_addr(addr: str) -> str:
    """``host:port`` or ``http://host:port`` → a base http URL."""
    addr = addr.strip().rstrip("/")
    if not addr:
        raise ReticleError("empty daemon address")
    if addr.startswith("http://"):
        return addr
    if addr.startswith(("https://", "unix:")):
        raise ReticleError(
            f"unsupported address {addr!r} (reticle top/flightrecorder "
            "speak plain http over TCP)"
        )
    return f"http://{addr}"


def _get(base_url: str, path: str, timeout: float = 30.0) -> bytes:
    hostport = base_url[len("http://") :]
    host, _, port = hostport.partition(":")
    connection = http.client.HTTPConnection(
        host, int(port or "80"), timeout=timeout
    )
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        body = response.read()
        if response.status != 200:
            raise ReticleError(
                f"GET {path} answered {response.status}: {body[:200]!r}"
            )
        return body
    finally:
        connection.close()


@dataclass
class TopSample:
    """One scrape of ``/metrics``, timestamped for rate computation."""

    time: float
    families: Dict[str, MetricFamily]

    @classmethod
    def scrape(cls, base_url: str) -> "TopSample":
        text = _get(base_url, "/metrics").decode("utf-8")
        return cls(time=time.time(), families=parse_prometheus(text))

    def value(self, name: str, default: float = 0.0) -> float:
        family = self.families.get(name)
        return family.value() if family is not None else default

    def hist(self, name: str) -> "tuple[float, float]":
        """(sum, count) of a histogram family, zeros when absent."""
        family = self.families.get(name)
        if family is None:
            return 0.0, 0.0
        total = family.sample("_sum")
        count = family.sample("_count")
        return (
            total.value if total is not None else 0.0,
            count.value if count is not None else 0.0,
        )

    def stage_names(self) -> List[str]:
        return sorted(
            name for name in self.families if name.startswith("stage_")
        )


@dataclass
class TopView:
    """The derived numbers one ``top`` frame displays."""

    uptime_s: float = 0.0
    requests: float = 0.0
    throughput_rps: float = 0.0
    window_p50_ms: float = 0.0
    window_p95_ms: float = 0.0
    window_error_rate: float = 0.0
    total_errors: float = 0.0
    cache_hit_ratio: float = 0.0
    queue_depth: float = 0.0
    queue_limit: float = 0.0
    rss_mb: float = 0.0
    #: executor saturation (zeros when the daemon predates the gauges)
    workers: float = 0.0
    busy_workers: float = 0.0
    inflight: float = 0.0
    worker_crashes: float = 0.0
    #: stage name -> (share of stage time, avg ms, runs) over the delta
    stages: Dict[str, "tuple[float, float, float]"] = field(
        default_factory=dict
    )


def derive_view(
    current: TopSample, previous: Optional[TopSample] = None
) -> TopView:
    """Compute one frame's numbers from a scrape (+ optional delta)."""
    view = TopView(
        uptime_s=current.value("process_uptime_seconds"),
        requests=current.value("service_requests"),
        window_p50_ms=current.value("service_window_p50_latency_s") * 1000,
        window_p95_ms=current.value("service_window_p95_latency_s") * 1000,
        window_error_rate=current.value("service_window_error_rate"),
        total_errors=current.value("service_errors"),
        queue_depth=current.value("service_queue_depth"),
        queue_limit=current.value("service_queue_limit"),
        rss_mb=current.value("process_max_rss_bytes") / (1024 * 1024),
        workers=current.value("service_workers"),
        busy_workers=current.value("service_busy_workers"),
        inflight=current.value("service_inflight"),
        worker_crashes=current.value("service_worker_crashes"),
    )
    hits = current.value("cache_hits")
    misses = current.value("cache_misses")
    if hits + misses > 0:
        view.cache_hit_ratio = hits / (hits + misses)
    if previous is not None and current.time > previous.time:
        elapsed = current.time - previous.time
        view.throughput_rps = max(
            0.0,
            (view.requests - previous.value("service_requests")) / elapsed,
        )
    elif view.uptime_s > 0:
        view.throughput_rps = view.requests / view.uptime_s

    sums: Dict[str, "tuple[float, float]"] = {}
    total_stage_s = 0.0
    for name in current.stage_names():
        stage_sum, stage_count = current.hist(name)
        if previous is not None:
            prev_sum, prev_count = previous.hist(name)
            stage_sum -= prev_sum
            stage_count -= prev_count
        if stage_count <= 0:
            continue
        sums[name] = (stage_sum, stage_count)
        total_stage_s += stage_sum
    for name, (stage_sum, stage_count) in sums.items():
        share = stage_sum / total_stage_s if total_stage_s > 0 else 0.0
        view.stages[name[len("stage_") :]] = (
            share,
            stage_sum * 1000 / stage_count,
            stage_count,
        )
    return view


def _bar(share: float, width: int = 20) -> str:
    filled = int(round(share * width))
    return "#" * filled + "." * (width - filled)


def render_top(
    current: TopSample,
    previous: Optional[TopSample] = None,
    address: str = "",
) -> str:
    """One ``reticle top`` frame as plain text."""
    view = derive_view(current, previous)
    window = "window" if previous is not None else "boot"
    lines = [
        f"reticle top — {address or 'daemon'} — "
        f"up {view.uptime_s:.0f}s — rss {view.rss_mb:.0f}M",
        "",
        f"  requests   {view.requests:>10.0f} total   "
        f"{view.throughput_rps:>8.1f} req/s ({window})",
        f"  latency    {view.window_p50_ms:>10.2f} ms p50  "
        f"{view.window_p95_ms:>8.2f} ms p95 (rolling window)",
        f"  errors     {view.total_errors:>10.0f} total   "
        f"{view.window_error_rate:>8.1%} windowed rate",
        f"  cache      {view.cache_hit_ratio:>10.1%} hit ratio",
        f"  queue      {view.queue_depth:>10.0f} deep    "
        f"limit {view.queue_limit:.0f}",
    ]
    if view.workers > 0:
        # Executor saturation: busy/total workers as a bar, plus the
        # inflight and crash counts (crashes only ever nonzero on the
        # process executor).  Daemons predating these gauges simply
        # skip the line.
        share = min(1.0, view.busy_workers / view.workers)
        lines.append(
            f"  workers    {view.busy_workers:>6.0f}/{view.workers:<3.0f} "
            f"busy  {_bar(share)}  inflight {view.inflight:.0f}  "
            f"crashes {view.worker_crashes:.0f}"
        )
    if view.stages:
        lines.append("")
        lines.append(
            f"  {'stage':<12} {'share':>6}  {'avg ms':>9}  {'runs':>7}"
        )
        for name, (share, avg_ms, runs) in sorted(
            view.stages.items(), key=lambda item: -item[1][0]
        ):
            lines.append(
                f"  {name:<12} {share:>6.1%}  {avg_ms:>9.3f}  "
                f"{runs:>7.0f}  {_bar(share)}"
            )
    return "\n".join(lines)


def top_main(args) -> int:
    """The ``reticle top <addr>`` entry point."""
    base_url = normalize_addr(args.addr)
    previous: Optional[TopSample] = None
    frames = 0
    try:
        while True:
            current = TopSample.scrape(base_url)
            frame = render_top(current, previous, address=base_url)
            if args.count != 1 and sys.stdout.isatty():
                sys.stdout.write("\x1b[2J\x1b[H")  # clear + home
            print(frame, flush=True)
            frames += 1
            previous = current
            if args.count and frames >= args.count:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def flightrecorder_main(args) -> int:
    """The ``reticle flightrecorder <addr>`` entry point."""
    base_url = normalize_addr(args.addr)
    dump = json.loads(_get(base_url, "/debug/flightrecorder"))
    if args.json:
        print(json.dumps(dump, indent=2))
        return 0
    print(
        f"flight recorder: {dump['recorded']} recorded, "
        f"{len(dump['slowest'])} slowest retained, "
        f"{len(dump['failed'])} failed retained "
        f"({dump['evicted']} evicted)"
    )
    for section, records in (("slowest", dump["slowest"]),
                             ("failed", dump["failed"])):
        if not records:
            continue
        print(f"\n{section}:")
        for record in records:
            stages = " ".join(
                f"{name}={seconds * 1000:.1f}ms"
                for name, seconds in record["stages"].items()
            )
            outcome = "ok" if record["ok"] else f"ERROR: {record['error']}"
            cached = " (cached)" if record["cached"] else ""
            print(
                f"  {record['trace_id']:<20} {record['seconds'] * 1000:>9.2f}ms"
                f"  wait {record['queue_wait_s'] * 1000:>7.2f}ms"
                f"  {outcome}{cached}"
            )
            if stages:
                print(f"  {'':<20} {stages}")
    return 0
