"""A persistent multiprocess compile executor: break the GIL.

Every other parallel surface in the repo rides a
``ThreadPoolExecutor``; Python compiles are CPU-bound, so those
threads serialize on the GIL and daemon throughput stops scaling past
roughly one worker of useful CPU.  :class:`ProcessCompilePool` is the
process-based tier behind ``--executor process``: a fixed set of
worker *processes* that boot once (spawn start method, pre-importing
the compiler), pre-warm per-``(target, options)`` compilers, and keep
a per-worker in-memory compile cache on top of the existing
cross-process shared disk tier.

Wire format: tasks ship as compact canonical-IR text plus an options
key, digest-first — each worker keeps a digest-addressed memo of
parsed functions, so a worker that already holds the digest warm
skips deserialization entirely (counter ``service.ir_memo_hits``).
Results come back as pickled artifacts with the worker's private
:class:`~repro.obs.Tracer`; the parent merges it canonically, so
spans, counters, and trace IDs survive the process boundary exactly
as ``Tracer.merge`` does for threads.

Service-grade edges, all pinned by tests:

* worker crash — the task is retried once on another worker, then
  fails typed (:class:`~repro.errors.WorkerCrashError`, counter
  ``service.worker_crashes``); the pool survives, the crashed worker
  is respawned;
* graceful drain — :meth:`shutdown` finishes queued work, then asks
  every worker to exit cleanly (the daemon calls it on ``/shutdown``);
* recycling — after ``max_tasks_per_worker`` tasks a worker is
  retired and a fresh one spawned (counter ``service.worker_recycled``),
  bounding any slow per-process state growth;
* saturation — ``service_busy_workers``/``service_inflight`` gauges
  for ``/metrics`` and ``reticle top``.

Threads still win for tiny programs and warm-cache hits: a process
task pays pickling plus a pipe round-trip (~1 ms), which dwarfs a
50 µs cache hit.  The default everywhere therefore stays ``thread``.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReticleError, WorkerCrashError
from repro.obs import Tracer

#: Environment override for the multiprocessing start method.  The
#: default is ``spawn``: fork is unsafe under the daemon's asyncio
#: loop and worker threads, and spawn gives every worker a pristine
#: interpreter whose import cost is paid once per pool, not per task.
START_METHOD_ENV = "RETICLE_MP_START"

#: Parsed functions memoized per worker, keyed by IR digest.
IR_MEMO_LIMIT = 1024


# -- wire format -----------------------------------------------------


@dataclass(frozen=True)
class FuncTask:
    """One function compile shipped to a worker (``compile_prog``).

    ``digest`` addresses the worker's parsed-function memo; ``ir`` is
    the canonical printing of the function (explicit result types),
    which round-trips through the parser byte-identically.  The
    remaining fields reconstruct the parent's compiler configuration:
    ``target`` a registered target name, ``pipeline`` the pass names,
    ``options`` the compiler's cache-key options (sorted items, lists
    canonicalized to tuples), ``cache_dir`` the shared disk tier.
    """

    digest: str
    ir: str
    target: str
    pipeline: Tuple[str, ...]
    options: Tuple[Tuple[str, object], ...]
    cache_dir: Optional[str] = None
    use_cache: bool = False
    trace_id: Optional[str] = None
    #: Test hook: the worker exits hard before compiling, simulating
    #: a crash (OOM kill, segfaulting native code).  Unreachable from
    #: any public API — only crash-injection tests construct it.
    poison: bool = False


@dataclass(frozen=True)
class RequestTask:
    """One service request shipped to a worker (the daemon path)."""

    program: str
    target: str
    options: Tuple[Tuple[str, object], ...]
    cache_dir: Optional[str] = None
    trace_id: Optional[str] = None
    queue_wait_s: float = 0.0
    poison: bool = False


@dataclass
class FuncArtifacts:
    """A compiled function's artifacts, as pickled back by a worker."""

    selected: object
    cascaded: object
    placed: object
    netlist: object
    stages: Dict[str, float]
    cached: bool
    lineage: object = None


@dataclass
class WireResult:
    """One task's outcome crossing back over the pipe."""

    ok: bool
    payload: object = None  # FuncArtifacts | CompileResponse
    tracer: Optional[Tracer] = None
    latency: float = 0.0
    error_type: str = ""
    error: str = ""


def rebuild_error(error_type: str, message: str) -> ReticleError:
    """The parent-side exception for a worker-reported failure.

    Worker exceptions cross the pipe as ``(type name, message)``; the
    parent re-raises the same typed error when the name resolves to a
    :class:`ReticleError` subclass, so ``except SelectionError:``
    works identically under both executors.
    """
    import repro.errors as errors_module

    cls = getattr(errors_module, error_type, None)
    if isinstance(cls, type) and issubclass(cls, ReticleError):
        try:
            return cls(message)
        except TypeError:  # exotic constructor signature
            pass
    return ReticleError(f"{error_type}: {message}")


# -- worker side -----------------------------------------------------


class _WorkerState:
    """Everything a worker keeps warm across tasks."""

    def __init__(self) -> None:
        self.ir_memo: "OrderedDict[str, object]" = OrderedDict()
        self.compilers: Dict[Tuple, object] = {}
        self.caches: Dict[Tuple, object] = {}
        self.services: Dict[Optional[str], object] = {}

    def cache_for(self, cache_dir: Optional[str], use_cache: bool):
        """The worker-local compile cache over the shared disk tier."""
        if not use_cache:
            return None
        from repro.passes import CompileCache

        key = (cache_dir,)
        cache = self.caches.get(key)
        if cache is None:
            cache = self.caches[key] = CompileCache(cache_dir=cache_dir)
        return cache

    def service_for(self, cache_dir: Optional[str]):
        """The worker-local compile service (daemon request path)."""
        service = self.services.get(cache_dir)
        if service is None:
            from repro.passes import CompileCache
            from repro.serve.service import CompileService

            service = CompileService(
                cache=CompileCache(cache_dir=cache_dir)
            )
            self.services[cache_dir] = service
        return service

    def parse_ir(self, task: FuncTask, tracer: Tracer):
        """The task's function, from the memo or a fresh parse."""
        func = self.ir_memo.get(task.digest)
        if func is not None:
            self.ir_memo.move_to_end(task.digest)
            tracer.count("service.ir_memo_hits")
            return func
        from repro.ir.parser import parse_func

        func = parse_func(task.ir)
        self.ir_memo[task.digest] = func
        while len(self.ir_memo) > IR_MEMO_LIMIT:
            self.ir_memo.popitem(last=False)
        return func

    def compiler_for(self, task: FuncTask):
        """The pooled compiler matching the parent's configuration."""
        key = (task.target, task.pipeline, task.options, task.cache_dir)
        compiler = self.compilers.get(key)
        if compiler is not None:
            return compiler
        from repro.compiler import ReticleCompiler, resolve_target

        target, device = resolve_target(task.target)
        options = {
            name: list(value) if isinstance(value, tuple) else value
            for name, value in task.options
        }
        compiler = ReticleCompiler(
            target=target,
            device=device,
            passes=list(task.pipeline),
            cache=self.cache_for(task.cache_dir, task.use_cache),
            **options,
        )
        self.compilers[key] = compiler
        return compiler


def _execute_func(state: _WorkerState, task: FuncTask) -> WireResult:
    tracer = Tracer(trace_id=task.trace_id)
    try:
        func = state.parse_ir(task, tracer)
        compiler = state.compiler_for(task)
        result = compiler.compile(func, tracer=tracer)
        payload = FuncArtifacts(
            selected=result.selected,
            cascaded=result.cascaded,
            placed=result.placed,
            netlist=result.netlist,
            stages=dict(result.metrics.stages),
            cached=result.cached,
            lineage=result.lineage,
        )
        return WireResult(ok=True, payload=payload, tracer=tracer)
    except Exception as error:  # noqa: BLE001 - crossed back typed
        return WireResult(
            ok=False,
            tracer=tracer,
            error_type=type(error).__name__,
            error=str(error),
        )


def _execute_request(state: _WorkerState, task: RequestTask) -> WireResult:
    from repro.obs import TraceContext
    from repro.serve.service import CompileRequest

    service = state.service_for(task.cache_dir)
    request = CompileRequest(
        program=task.program, target=task.target, options=task.options
    )
    ctx = TraceContext(
        trace_id=task.trace_id, queue_wait_s=task.queue_wait_s
    )
    # execute_request never raises: compile errors are responses.
    response, tracer, latency = service.execute_request(request, ctx=ctx)
    return WireResult(
        ok=True, payload=response, tracer=tracer, latency=latency
    )


def _worker_main(conn, boot: Dict[str, object]) -> None:
    """A worker process's life: boot, prewarm, serve tasks, exit.

    Lives at module level so the spawn start method can re-import it;
    runs until an ``exit`` message or EOF (parent died).
    """
    import signal

    # The parent handles interrupts and drains us explicitly; a ^C
    # broadcast to the process group must not kill workers mid-task.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    state = _WorkerState()
    for spec in boot.get("warm", ()):
        try:
            if spec[0] == "request":
                _, target, options = spec
                from repro.serve.service import CompileRequest

                state.service_for(boot.get("cache_dir")).compiler_for(
                    CompileRequest(
                        program="-", target=target, options=tuple(options)
                    )
                )
            elif spec[0] == "func":
                _, target, pipeline, options, cache_dir, use_cache = spec
                state.compiler_for(
                    FuncTask(
                        digest="",
                        ir="",
                        target=target,
                        pipeline=tuple(pipeline),
                        options=tuple(options),
                        cache_dir=cache_dir,
                        use_cache=use_cache,
                    )
                )
        except Exception:  # noqa: BLE001 - prewarm is best-effort
            pass
    conn.send(("ready", os.getpid()))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind, payload = message
        if kind == "exit":
            break
        task = payload
        if getattr(task, "poison", False):
            os._exit(23)
        if isinstance(task, FuncTask):
            result = _execute_func(state, task)
        else:
            result = _execute_request(state, task)
        try:
            conn.send(("result", result))
        except (BrokenPipeError, OSError):
            break
    conn.close()


# -- parent side -----------------------------------------------------


@dataclass
class _Job:
    task: object
    future: Future
    attempts: int = 0


class _Worker:
    """Parent-side handle of one worker process."""

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.tasks_done = 0
        self.ready = False


class ProcessCompilePool:
    """A fixed pool of persistent compile worker processes.

    ``submit`` returns a :class:`concurrent.futures.Future`; the pool
    owns one dispatcher thread per worker, so a crashed worker stalls
    only its own lane while the others keep draining the shared queue.
    """

    def __init__(
        self,
        workers: int,
        warm: Sequence[Tuple] = (),
        cache_dir: Optional[str] = None,
        tracer: Optional[Tracer] = None,
        max_tasks_per_worker: int = 0,
        start_method: Optional[str] = None,
        boot_timeout: float = 120.0,
    ) -> None:
        if workers < 1:
            raise ReticleError("process pool needs at least one worker")
        method = (
            start_method
            or os.environ.get(START_METHOD_ENV, "").strip()
            or "spawn"
        )
        self._ctx = multiprocessing.get_context(method)
        self._boot = {"warm": tuple(warm), "cache_dir": cache_dir}
        self._boot_timeout = boot_timeout
        self.workers = workers
        self.max_tasks_per_worker = max_tasks_per_worker
        self.tracer = tracer
        self._queue: "queue.Queue[Optional[_Job]]" = queue.Queue()
        self._lock = threading.Lock()
        self._busy = 0
        self._inflight = 0
        self._crashes = 0
        self._recycled = 0
        self._closed = False
        self._threads: List[threading.Thread] = []
        for index in range(workers):
            thread = threading.Thread(
                target=self._dispatch_loop,
                name=f"reticle-procpool-{index}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    # -- bookkeeping -------------------------------------------------

    @property
    def busy_workers(self) -> int:
        with self._lock:
            return self._busy

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def crashes(self) -> int:
        with self._lock:
            return self._crashes

    @property
    def recycled(self) -> int:
        with self._lock:
            return self._recycled

    def saturation_gauges(self) -> Dict[str, float]:
        """Executor saturation for ``/metrics`` and ``reticle top``."""
        with self._lock:
            return {
                "service_busy_workers": float(self._busy),
                "service_inflight": float(self._inflight),
                "service_worker_crashes": float(self._crashes),
                "service_worker_recycled": float(self._recycled),
            }

    def _count(self, name: str) -> None:
        if self.tracer is not None:
            self.tracer.count(name)

    # -- submission --------------------------------------------------

    def submit(self, task) -> Future:
        """Enqueue one task; the future resolves to its WireResult."""
        with self._lock:
            if self._closed:
                raise ReticleError("process pool is shut down")
            self._inflight += 1
        future: Future = Future()
        self._queue.put(_Job(task=task, future=future))
        return future

    def run(self, task) -> WireResult:
        """Submit and wait (convenience for serial callers)."""
        return self.submit(task).result()

    # -- worker lifecycle --------------------------------------------

    def _spawn_worker(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._boot),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(process=process, conn=parent_conn)

    def _await_ready(self, worker: _Worker) -> None:
        if worker.ready:
            return
        if not worker.conn.poll(self._boot_timeout):
            raise ReticleError(
                f"compile worker pid={worker.process.pid} did not boot "
                f"within {self._boot_timeout}s"
            )
        kind, _ = worker.conn.recv()
        if kind != "ready":
            raise ReticleError(f"unexpected worker boot message: {kind}")
        worker.ready = True

    def _retire_worker(self, worker: _Worker, graceful: bool) -> None:
        try:
            if graceful and worker.process.is_alive():
                worker.conn.send(("exit", None))
        except (BrokenPipeError, OSError):
            pass
        worker.process.join(timeout=10)
        if worker.process.is_alive():  # pragma: no cover - stuck worker
            worker.process.terminate()
            worker.process.join(timeout=10)
        worker.conn.close()

    # -- dispatch ----------------------------------------------------

    def _dispatch_loop(self) -> None:
        worker = self._spawn_worker()
        try:
            while True:
                job = self._queue.get()
                if job is None:
                    break
                # _run_job hands back the lane's worker — a fresh one
                # after a crash or a recycle, the same one otherwise.
                worker = self._run_job(worker, job)
        finally:
            self._retire_worker(worker, graceful=True)

    def _run_job(self, worker: _Worker, job: _Job) -> _Worker:
        with self._lock:
            self._busy += 1
        try:
            self._await_ready(worker)
            worker.conn.send(("task", job.task))
            kind, result = worker.conn.recv()
        except (EOFError, BrokenPipeError, OSError, ReticleError) as error:
            return self._handle_crash(worker, job, error)
        finally:
            with self._lock:
                self._busy -= 1
        worker.tasks_done += 1
        with self._lock:
            self._inflight -= 1
        if result.ok:
            job.future.set_result(result)
        else:
            job.future.set_exception(
                rebuild_error(result.error_type, result.error)
            )
        if (
            self.max_tasks_per_worker
            and worker.tasks_done >= self.max_tasks_per_worker
        ):
            self._retire_worker(worker, graceful=True)
            with self._lock:
                self._recycled += 1
            self._count("service.worker_recycled")
            worker = self._spawn_worker()
        return worker

    def _handle_crash(self, worker: _Worker, job: _Job, error) -> _Worker:
        """A worker died mid-task: respawn, retry once, then fail typed."""
        self._retire_worker(worker, graceful=False)
        exitcode = worker.process.exitcode
        with self._lock:
            self._crashes += 1
        self._count("service.worker_crashes")
        if job.attempts < 1:
            job.attempts += 1
            # Back on the shared queue: whichever dispatcher lane is
            # free next (usually another worker) picks the retry up.
            self._queue.put(job)
        else:
            with self._lock:
                self._inflight -= 1
            job.future.set_exception(
                WorkerCrashError(
                    "compile worker crashed twice running one task "
                    f"(last pid={worker.process.pid}, exit={exitcode}): "
                    f"{error}"
                )
            )
        return self._spawn_worker()

    # -- shutdown ----------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Graceful drain: finish queued work, retire every worker."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join()

    def __enter__(self) -> "ProcessCompilePool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=True)


def ir_digest(ir: str) -> str:
    """The digest addressing a worker's parsed-function memo."""
    import hashlib

    return hashlib.blake2b(ir.encode("utf-8"), digest_size=16).hexdigest()
