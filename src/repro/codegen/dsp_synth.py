"""Configuring DSP slices for assembly instructions.

Every DSP-bound assembly instruction becomes one ``DSP48E2`` cell.
The configuration is derived from the instruction's target definition:
the body's operations pick the ALU/multiplier mode, a trailing
register enables ``PREG``, the result type's lanes pick the SIMD mode
(``ONE48``/``TWO24``/``FOUR12``), and a ``_ci``/``_co``/``_cico`` name
suffix wires the partial-sum input or result over the dedicated
``PCIN``/``PCOUT`` cascade ports (Section 5.2).

Operands are sign-extended into the DSP's lane fields by bit aliasing
— replicating the lane's sign bit costs no logic, mirroring how real
designs feed narrow operands to the 48-bit datapath.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.asm.ast import AsmInstr
from repro.errors import CodegenError
from repro.ir.ops import CompOp
from repro.ir.semantics import reg_init_pattern
from repro.ir.types import Ty
from repro.netlist.core import Cell, Netlist
from repro.netlist.primitives import SIMD_LANES
from repro.prims import Prim
from repro.tdl.ast import AsmDef
from repro.utils.bits import pack_lanes, to_unsigned

DSP_WIDTH = 48


@dataclass(frozen=True)
class DspConfig:
    """The distilled configuration of one DSP instruction."""

    op: str                  # ADD | SUB | MUL | MULADD
    use_simd: str            # ONE48 | TWO24 | FOUR12
    preg: int                # 0 | 1
    areg: int = 0            # input pipeline registers
    breg: int = 0
    creg: int = 0
    cascade_in: bool = False
    cascade_out: bool = False
    init: int = 0            # P register initial value (PREG=1)


def simd_mode(ty: Ty) -> str:
    if ty.lanes == 1:
        return "ONE48"
    if ty.lanes == 2:
        return "TWO24"
    if ty.lanes == 4:
        return "FOUR12"
    raise CodegenError(f"no SIMD mode for {ty.lanes} lanes")


def _body_ops(asm_def: AsmDef) -> List[CompOp]:
    return [instr.op for instr in asm_def.body]  # type: ignore[union-attr]


def configure(instr: AsmInstr, asm_def: AsmDef) -> DspConfig:
    """Derive the DSP configuration for one instruction.

    Body registers map onto the slice's pipeline registers: a register
    whose operand is the ``a``/``b``/``c`` input becomes ``AREG``/
    ``BREG``/``CREG``, and a register defining the output becomes
    ``PREG``.  The remaining pure operations pick the ALU/multiplier
    mode.
    """
    input_names = {port.name for port in asm_def.inputs}
    input_regs = {"a": 0, "b": 0, "c": 0}
    preg = 0
    pure_ops: List[CompOp] = []
    for body in asm_def.body:
        if body.op is CompOp.REG:  # type: ignore[union-attr]
            if body.dst == asm_def.output.name:
                preg = 1
            elif body.args[0] in input_names and body.args[0] in input_regs:
                input_regs[body.args[0]] = 1
            else:
                raise CodegenError(
                    f"definition {asm_def.name!r}: register {body.dst!r} "
                    "maps to no DSP pipeline register"
                )
        else:
            pure_ops.append(body.op)  # type: ignore[union-attr]
    if any(input_regs.values()) and not preg:
        raise CodegenError(
            f"definition {asm_def.name!r}: DSP input registers require an "
            "output register"
        )

    if pure_ops == [CompOp.MUL, CompOp.ADD]:
        dsp_op = "MULADD"
    elif pure_ops == [CompOp.MUL]:
        dsp_op = "MUL"
    elif pure_ops == [CompOp.ADD]:
        dsp_op = "ADD"
    elif pure_ops == [CompOp.SUB]:
        dsp_op = "SUB"
    else:
        raise CodegenError(
            f"definition {asm_def.name!r} has no DSP mapping "
            f"(body ops: {[op.value for op in pure_ops]})"
        )

    mode = simd_mode(instr.ty)
    if dsp_op in ("MUL", "MULADD") and mode != "ONE48":
        raise CodegenError(f"{dsp_op} requires a scalar type, got {instr.ty}")

    init = 0
    if preg:
        # The captured reg init, re-packed into the SIMD lane fields.
        lane_values = _init_lane_values(instr, asm_def)
        field_width = SIMD_LANES[mode][0]
        init = pack_lanes(
            [to_unsigned(v, field_width) for v in lane_values], field_width
        )

    return DspConfig(
        op=dsp_op,
        use_simd=mode,
        preg=preg,
        areg=input_regs["a"],
        breg=input_regs["b"],
        creg=input_regs["c"],
        cascade_in=instr.op.endswith("_ci") or instr.op.endswith("_cico"),
        cascade_out=instr.op.endswith("_co") or instr.op.endswith("_cico"),
        init=init,
    )


def _init_lane_values(instr: AsmInstr, asm_def: AsmDef) -> List[int]:
    """Signed per-lane initial values of the output (P) register.

    The instruction's attrs parameterize the body in body order (see
    :mod:`repro.asm.interp`); this picks out the attrs belonging to the
    body instruction that defines the output.
    """
    width = instr.ty.lane_type().width
    attr_stream = list(instr.attrs)
    attrs: Tuple[int, ...] = ()
    for body in asm_def.body:
        needed = body.op.num_attrs  # type: ignore[union-attr]
        if attr_stream and needed:
            taken = tuple(attr_stream[:needed])
            attr_stream = attr_stream[needed:]
        else:
            taken = body.attrs
        if body.dst == asm_def.output.name:
            attrs = taken
    pattern = reg_init_pattern(attrs, instr.ty)
    from repro.utils.bits import to_signed, unpack_lanes

    return [
        to_signed(lane, width)
        for lane in unpack_lanes(pattern, width, instr.ty.lanes)
    ]


class DspSynthesizer:
    """Builds DSP cells, handling lane packing and cascade wiring."""

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        # dst variable -> PCOUT bits of the producing DSP, for PCIN hookup.
        self.pcout_of: Dict[str, List[int]] = {}

    def _extend_into_fields(self, bits: List[int], ty: Ty, mode: str) -> List[int]:
        """Sign-extend each lane into its SIMD field by aliasing."""
        field_width = SIMD_LANES[mode][0]
        lane_width = ty.lane_type().width
        fields: List[int] = []
        for lane in range(ty.lanes):
            lane_bits = bits[lane * lane_width : (lane + 1) * lane_width]
            sign = lane_bits[-1]
            fields.extend(lane_bits)
            fields.extend([sign] * (field_width - lane_width))
        # Scalars narrower than 48 bits leave the remaining field bits
        # at the final sign (ONE48 has one 48-bit field).
        total = sum(SIMD_LANES[mode])
        if len(fields) < total:
            fields.extend([fields[-1]] * (total - len(fields)))
        return fields

    def _extract_result(self, p_bits: List[int], ty: Ty, mode: str) -> List[int]:
        field_width = SIMD_LANES[mode][0]
        lane_width = ty.lane_type().width
        out: List[int] = []
        for lane in range(ty.lanes):
            base = lane * field_width
            out.extend(p_bits[base : base + lane_width])
        return out

    def synth(
        self,
        instr: AsmInstr,
        asm_def: AsmDef,
        arg_bits: Dict[str, List[int]],
        arg_types: Dict[str, Ty],
        p_bits: Optional[List[int]] = None,
        pcout_bits: Optional[List[int]] = None,
    ) -> List[int]:
        """Create the DSP cell for ``instr``; returns the dst bits.

        ``p_bits``/``pcout_bits`` are pre-allocated output buses for
        registered (stateful) instructions.
        """
        config = configure(instr, asm_def)
        col, row = instr.loc.position()

        inputs: Dict[str, List[int]] = {}
        port_map = {"a": "A", "b": "B", "c": "C"}
        enable_bits: Optional[List[int]] = None
        for port, arg in zip(asm_def.inputs, instr.args):
            if port.name == "en":
                enable_bits = arg_bits[arg]
                continue
            pin = port_map.get(port.name)
            if pin is None:
                raise CodegenError(
                    f"definition {asm_def.name!r}: unknown DSP input "
                    f"{port.name!r}"
                )
            if pin == "C" and config.cascade_in:
                pcout = self.pcout_of.get(arg)
                if pcout is None:
                    raise CodegenError(
                        f"{instr.dst!r}: cascade input {arg!r} is not "
                        "produced by a cascade-out DSP"
                    )
                inputs["PCIN"] = pcout
                continue
            inputs[pin] = self._extend_into_fields(
                arg_bits[arg], arg_types[arg], config.use_simd
            )
        if config.preg:
            if enable_bits is None:
                raise CodegenError(
                    f"definition {asm_def.name!r}: registered DSP without "
                    "an enable input"
                )
            inputs["CE"] = [enable_bits[0]]

        if p_bits is None:
            p_bits = self.netlist.new_bits(DSP_WIDTH)
        if pcout_bits is None:
            pcout_bits = self.netlist.new_bits(DSP_WIDTH)

        params = {
            "OP": config.op,
            "USE_SIMD": config.use_simd,
            "PREG": config.preg,
            "AREG": config.areg,
            "BREG": config.breg,
            "CREG": config.creg,
            "CASCADE_IN": "PCIN" if config.cascade_in else "NONE",
            "INIT": config.init,
        }
        self.netlist.add_cell(
            Cell(
                kind="DSP48E2",
                name=f"dsp_{instr.dst}",
                params=params,
                inputs=inputs,
                outputs={"P": p_bits, "PCOUT": pcout_bits},
                loc=(Prim.DSP, col, row),
                bel="DSP",
            )
        )
        if config.cascade_out:
            self.pcout_of[instr.dst] = pcout_bits
        return self._extract_result(p_bits, instr.ty, config.use_simd)
