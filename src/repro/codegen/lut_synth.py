"""Bit-level synthesis of compute operations onto the LUT fabric.

Each IR compute operation expands to primitives: one LUT per bit for
bitwise logic and muxes, LUT-propagate + CARRY8 chains for arithmetic
and ordered comparisons, XNOR trees for equality, FDREs for registers,
and a shift-add array for multiplication.  Every cell is stamped with
the owning instruction's placed slice coordinate; a slice allocator
assigns BELs (``A6LUT``..``H6LUT``, ``AFF``..``HFF``) and advances to
the next row when a slice fills up.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.codegen.lut_init import (
    INIT_AND2,
    INIT_LT3,
    INIT_GE3,
    INIT_MUX3,
    INIT_NOT1,
    INIT_OR2,
    INIT_XNOR2,
    INIT_XOR2,
    and_reduce_init,
    and_reduce_not_init,
)
from repro.errors import CodegenError
from repro.ir.ops import CompOp
from repro.ir.semantics import reg_init_pattern
from repro.ir.types import Ty
from repro.netlist.core import Cell, GND, Netlist, VCC
from repro.prims import Prim

_BEL_LETTERS = "ABCDEFGH"


class SliceAllocator:
    """Assigns BELs within the slices an instruction occupies.

    The slice at ``(column, row)`` hosts eight LUTs, eight FFs, and one
    CARRY8; when a resource class runs out the allocator moves up one
    row (placement sized the span from the instruction's TDL area, so
    overflow rows stay within or adjacent to the reserved footprint).
    """

    def __init__(self, column: int, row: int) -> None:
        self.column = column
        self.row = row
        self._luts = 0
        self._ffs = 0
        self._carries = 0

    def next_lut(self) -> Tuple[Tuple[Prim, int, int], str]:
        row = self.row + self._luts // 8
        bel = _BEL_LETTERS[self._luts % 8] + "6LUT"
        self._luts += 1
        return ((Prim.LUT, self.column, row), bel)

    def next_ff(self) -> Tuple[Tuple[Prim, int, int], str]:
        row = self.row + self._ffs // 8
        bel = _BEL_LETTERS[self._ffs % 8] + "FF"
        self._ffs += 1
        return ((Prim.LUT, self.column, row), bel)

    def next_carry(self) -> Tuple[Tuple[Prim, int, int], str]:
        row = self.row + self._carries
        self._carries += 1
        return ((Prim.LUT, self.column, row), "CARRY8")


class UnplacedAllocator(SliceAllocator):
    """An allocator that leaves cells unplaced.

    Used by the vendor-toolchain simulator, whose synthesis runs before
    placement: cells get their coordinates later, from the annealer.
    """

    def __init__(self) -> None:
        super().__init__(0, 0)

    def next_lut(self) -> Tuple[None, None]:  # type: ignore[override]
        return (None, None)

    def next_ff(self) -> Tuple[None, None]:  # type: ignore[override]
        return (None, None)

    def next_carry(self) -> Tuple[None, None]:  # type: ignore[override]
        return (None, None)


class LutSynthesizer:
    """Synthesizes compute operations into one netlist."""

    def __init__(self, netlist: Netlist, prefix: str) -> None:
        self.netlist = netlist
        self.prefix = prefix
        self._counter = 0

    def _name(self, kind: str) -> str:
        self._counter += 1
        return f"{self.prefix}_{kind}{self._counter}"

    def _lut(
        self,
        init: int,
        inputs: Sequence[int],
        alloc: SliceAllocator,
        out_bit: Optional[int] = None,
    ) -> int:
        if out_bit is None:
            out_bit = self.netlist.new_bits(1)[0]
        loc, bel = alloc.next_lut()
        self.netlist.add_cell(
            Cell(
                kind=f"LUT{len(inputs)}",
                name=self._name("lut"),
                params={"INIT": init},
                inputs={f"I{i}": [bit] for i, bit in enumerate(inputs)},
                outputs={"O": [out_bit]},
                loc=loc,
                bel=bel,
            )
        )
        return out_bit

    def _fdre(
        self,
        d_bit: int,
        ce_bit: int,
        init: int,
        alloc: SliceAllocator,
        out_bit: Optional[int] = None,
    ) -> int:
        if out_bit is None:
            out_bit = self.netlist.new_bits(1)[0]
        loc, bel = alloc.next_ff()
        self.netlist.add_cell(
            Cell(
                kind="FDRE",
                name=self._name("ff"),
                params={"INIT": init},
                inputs={"D": [d_bit], "CE": [ce_bit]},
                outputs={"Q": [out_bit]},
                loc=loc,
                bel=bel,
            )
        )
        return out_bit

    def _carry_chains(
        self,
        s_bits: List[int],
        di_bits: List[int],
        carry_in: int,
        alloc: SliceAllocator,
    ) -> Tuple[List[int], List[int]]:
        """Chain CARRY8 blocks over the given propagate/generate bits.

        Returns (sum bits, carry bits), both one per input bit.
        """
        width = len(s_bits)
        o_bits: List[int] = []
        co_bits: List[int] = []
        ci = carry_in
        for base in range(0, width, 8):
            chunk_s = s_bits[base : base + 8]
            chunk_di = di_bits[base : base + 8]
            pad = 8 - len(chunk_s)
            chunk_s = chunk_s + [GND] * pad
            chunk_di = chunk_di + [GND] * pad
            o_chunk = self.netlist.new_bits(8)
            co_chunk = self.netlist.new_bits(8)
            loc, bel = alloc.next_carry()
            self.netlist.add_cell(
                Cell(
                    kind="CARRY8",
                    name=self._name("carry"),
                    inputs={"S": chunk_s, "DI": chunk_di, "CI": [ci]},
                    outputs={"O": o_chunk, "CO": co_chunk},
                    loc=loc,
                    bel=bel,
                )
            )
            take = min(8, width - base)
            o_bits.extend(o_chunk[:take])
            co_bits.extend(co_chunk[:take])
            ci = co_chunk[7]
        return o_bits, co_bits

    # -- per-operation synthesis ----------------------------------------

    def _bitwise(
        self, init: int, a_bits: List[int], b_bits: List[int], alloc: SliceAllocator
    ) -> List[int]:
        return [
            self._lut(init, [a, b], alloc) for a, b in zip(a_bits, b_bits)
        ]

    def _addsub_lane(
        self,
        op: CompOp,
        a_bits: List[int],
        b_bits: List[int],
        alloc: SliceAllocator,
    ) -> Tuple[List[int], List[int]]:
        """One lane of add/sub: (sum bits, carry bits)."""
        if op is CompOp.ADD:
            s_init, carry_in = INIT_XOR2, GND
        else:
            s_init, carry_in = INIT_XNOR2, VCC
        s_bits = self._bitwise(s_init, a_bits, b_bits, alloc)
        return self._carry_chains(s_bits, a_bits, carry_in, alloc)

    def _addsub(
        self,
        op: CompOp,
        ty: Ty,
        a_bits: List[int],
        b_bits: List[int],
        alloc: SliceAllocator,
    ) -> List[int]:
        lane_width = ty.lane_type().width
        out: List[int] = []
        for lane in range(ty.lanes):
            lo = lane * lane_width
            hi = lo + lane_width
            sums, _ = self._addsub_lane(
                op, a_bits[lo:hi], b_bits[lo:hi], alloc
            )
            out.extend(sums)
        return out

    def _and_reduce(self, bits: List[int], alloc: SliceAllocator, invert: bool) -> int:
        """AND (or NAND at the final level) reduce a list of bits."""
        current = list(bits)
        while True:
            if len(current) == 1 and not invert:
                return current[0]
            next_level: List[int] = []
            for base in range(0, len(current), 6):
                group = current[base : base + 6]
                last_group = len(current) <= 6
                if last_group and invert:
                    init = and_reduce_not_init(len(group))
                else:
                    init = and_reduce_init(len(group))
                if len(group) == 1 and not (last_group and invert):
                    next_level.append(group[0])
                else:
                    next_level.append(self._lut(init, group, alloc))
            if len(current) <= 6:
                return next_level[0]
            current = next_level

    def _equality(
        self,
        op: CompOp,
        a_bits: List[int],
        b_bits: List[int],
        alloc: SliceAllocator,
    ) -> List[int]:
        same = self._bitwise(INIT_XNOR2, a_bits, b_bits, alloc)
        return [self._and_reduce(same, alloc, invert=(op is CompOp.NEQ))]

    def _less_than(
        self,
        a_bits: List[int],
        b_bits: List[int],
        alloc: SliceAllocator,
        invert: bool,
    ) -> int:
        """Signed a < b via a subtract chain: result = N ^ V."""
        width = len(a_bits)
        if width < 2:
            raise CodegenError("ordered comparison needs width >= 2")
        sums, carries = self._addsub_lane(CompOp.SUB, a_bits, b_bits, alloc)
        init = INIT_GE3 if invert else INIT_LT3
        return self._lut(
            init, [sums[width - 1], carries[width - 1], carries[width - 2]], alloc
        )

    def _compare(
        self,
        op: CompOp,
        a_bits: List[int],
        b_bits: List[int],
        alloc: SliceAllocator,
    ) -> List[int]:
        if op in (CompOp.EQ, CompOp.NEQ):
            return self._equality(op, a_bits, b_bits, alloc)
        if op is CompOp.LT:
            return [self._less_than(a_bits, b_bits, alloc, invert=False)]
        if op is CompOp.GT:
            return [self._less_than(b_bits, a_bits, alloc, invert=False)]
        if op is CompOp.GE:
            return [self._less_than(a_bits, b_bits, alloc, invert=True)]
        if op is CompOp.LE:
            return [self._less_than(b_bits, a_bits, alloc, invert=True)]
        raise CodegenError(f"not a comparison: {op}")  # pragma: no cover

    def _multiply(
        self, a_bits: List[int], b_bits: List[int], alloc: SliceAllocator
    ) -> List[int]:
        """Schoolbook multiply, truncated to the operand width."""
        width = len(a_bits)
        # Partial product 0: a & b0.
        acc = [
            self._lut(INIT_AND2, [a_bits[i], b_bits[0]], alloc)
            for i in range(width)
        ]
        for j in range(1, width):
            # acc[j:] += a[:width-j] & b[j]
            pp = [
                self._lut(INIT_AND2, [a_bits[i], b_bits[j]], alloc)
                for i in range(width - j)
            ]
            high, _ = self._addsub_lane(CompOp.ADD, acc[j:], pp, alloc)
            acc = acc[:j] + high
        return acc

    def synth_comp(
        self,
        op: CompOp,
        ty: Ty,
        attrs: Sequence[int],
        arg_bits: List[List[int]],
        alloc: SliceAllocator,
        out_bits: Optional[List[int]] = None,
    ) -> List[int]:
        """Synthesize one compute operation; returns the result bits.

        ``out_bits``, when given, receive the result (used for
        pre-allocated register outputs).
        """
        if op is CompOp.REG:
            init = reg_init_pattern(attrs, ty)
            data, enable = arg_bits
            if out_bits is None:
                out_bits = self.netlist.new_bits(ty.width)
            for index, (d_bit, q_bit) in enumerate(zip(data, out_bits)):
                self._fdre(
                    d_bit, enable[0], (init >> index) & 1, alloc, out_bit=q_bit
                )
            return out_bits

        if op in (CompOp.ADD, CompOp.SUB):
            result = self._addsub(op, ty, arg_bits[0], arg_bits[1], alloc)
        elif op is CompOp.MUL:
            if ty.is_vector:
                raise CodegenError("vector multiply is not supported on LUTs")
            result = self._multiply(arg_bits[0], arg_bits[1], alloc)
        elif op is CompOp.NOT:
            result = [self._lut(INIT_NOT1, [bit], alloc) for bit in arg_bits[0]]
        elif op is CompOp.AND:
            result = self._bitwise(INIT_AND2, arg_bits[0], arg_bits[1], alloc)
        elif op is CompOp.OR:
            result = self._bitwise(INIT_OR2, arg_bits[0], arg_bits[1], alloc)
        elif op is CompOp.XOR:
            result = self._bitwise(INIT_XOR2, arg_bits[0], arg_bits[1], alloc)
        elif op.is_comparison:
            result = self._compare(op, arg_bits[0], arg_bits[1], alloc)
        elif op is CompOp.MUX:
            cond = arg_bits[0][0]
            result = [
                self._lut(INIT_MUX3, [cond, a, b], alloc)
                for a, b in zip(arg_bits[1], arg_bits[2])
            ]
        else:  # pragma: no cover - exhaustive
            raise CodegenError(f"unhandled compute op: {op}")

        if out_bits is not None:
            raise CodegenError(
                "pre-allocated outputs are only supported for registers"
            )
        return result
