"""The code-generation driver: placed assembly function -> netlist.

Wire instructions become pure bit aliasing (no cells); LUT-bound
assembly instructions expand through their definition bodies into
LUT/CARRY8/FDRE cells at their placed slice; DSP-bound instructions
become configured DSP48E2 cells at their placed slice.  Stateful
instructions (whose defining body operation is a register) have their
outputs pre-allocated so feedback cycles resolve, mirroring the
interpreter's schedule.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.asm.ast import AsmFunc, AsmInstr, AsmOrWire
from repro.asm.interp import expand_asm_instr
from repro.codegen.bram_synth import BramSynthesizer
from repro.codegen.dsp_synth import DSP_WIDTH, DspSynthesizer, simd_mode
from repro.codegen.lut_synth import LutSynthesizer, SliceAllocator
from repro.errors import CodegenError
from repro.ir.ast import WireInstr
from repro.ir.ops import CompOp, WireOp
from repro.ir.semantics import eval_wire
from repro.ir.types import Ty
from repro.netlist.core import GND, Netlist, VCC
from repro.netlist.primitives import SIMD_LANES
from repro.netlist.stats import resource_counts
from repro.obs import NULL_TRACER
from repro.prims import Prim
from repro.tdl.ast import AsmDef, Target
from repro.utils.names import NameGenerator


def _breaks_cycle(asm_def: AsmDef) -> bool:
    """True when the instruction's value is a register (or RAM read
    port) output."""
    return asm_def.root().op in (CompOp.REG, CompOp.RAM)


def wire_bits(
    instr: WireInstr,
    arg_bits: List[List[int]],
    arg_types: List[Ty],
) -> List[int]:
    """Bit aliasing for one wire instruction (no cells)."""
    op = instr.op
    ty = instr.ty
    if op in (WireOp.SLL, WireOp.SRL, WireOp.SRA):
        amount = instr.attrs[0]
        width = ty.lane_type().width
        bits = arg_bits[0]
        out: List[int] = []
        for lane in range(ty.lanes):
            lane_bits = bits[lane * width : (lane + 1) * width]
            if op is WireOp.SLL:
                out.extend([GND] * amount + lane_bits[: width - amount])
            elif op is WireOp.SRL:
                out.extend(lane_bits[amount:] + [GND] * amount)
            else:
                out.extend(lane_bits[amount:] + [lane_bits[-1]] * amount)
        return out
    if op is WireOp.SLICE:
        arg_ty = arg_types[0]
        if arg_ty.is_vector:
            lane = instr.attrs[0]
            width = arg_ty.lane_type().width
            return arg_bits[0][lane * width : (lane + 1) * width]
        hi, lo = instr.attrs
        return arg_bits[0][lo : hi + 1]
    if op is WireOp.CAT:
        out = []
        for bits in arg_bits:
            out.extend(bits)
        return out
    if op is WireOp.ID:
        return list(arg_bits[0])
    if op is WireOp.CONST:
        pattern = eval_wire(op, ty, instr.attrs, [], [])
        return [VCC if (pattern >> i) & 1 else GND for i in range(ty.width)]
    raise CodegenError(f"unhandled wire op: {op}")  # pragma: no cover


class CodeGenerator:
    """Generates netlists for placed assembly functions of one target."""

    def __init__(self, target: Target) -> None:
        self.target = target

    def _def_of(self, instr: AsmInstr) -> AsmDef:
        asm_def = self.target.get(instr.op)
        if asm_def is None:
            raise CodegenError(
                f"target {self.target.name!r} has no definition {instr.op!r}"
            )
        return asm_def

    def _topo_order(self, func: AsmFunc) -> List[AsmOrWire]:
        """Dependency order; register-output values break cycles."""
        instrs = list(func.instrs)
        producer: Dict[str, int] = {}
        for index, instr in enumerate(instrs):
            stateful = isinstance(instr, AsmInstr) and _breaks_cycle(
                self._def_of(instr)
            )
            if not stateful:
                producer[instr.dst] = index
        dependents: List[List[int]] = [[] for _ in instrs]
        in_degree = [0] * len(instrs)
        for index, instr in enumerate(instrs):
            for arg in instr.args:
                source = producer.get(arg)
                if source is not None:
                    dependents[source].append(index)
                    in_degree[index] += 1
        ready = deque(i for i, d in enumerate(in_degree) if d == 0)
        order: List[AsmOrWire] = []
        while ready:
            node = ready.popleft()
            order.append(instrs[node])
            for succ in dependents[node]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(instrs):
            raise CodegenError("combinational cycle in assembly function")
        return order

    def generate(
        self, func: AsmFunc, tracer=NULL_TRACER, lineage=None
    ) -> Netlist:
        """Generate the structural netlist for ``func``.

        ``tracer`` (any :mod:`repro.obs` tracer) receives the emitted
        primitive counts (``codegen.luts``/``ffs``/``carries``/
        ``dsps``/``brams``/``cells``).  ``lineage`` records, for every
        assembly instruction, the names of the cells its synthesis
        stamped into the netlist (attribution by cell-list position:
        cells appended while one instruction synthesizes belong to it,
        so the emitted netlist itself is untouched).
        """
        if not func.is_placed:
            raise CodegenError(
                f"function {func.name!r} has unresolved locations; "
                "run placement first"
            )
        netlist = Netlist(name=func.name)
        types = func.defs()
        env: Dict[str, List[int]] = {}
        for port in func.inputs:
            env[port.name] = netlist.add_input(port.name, port.ty.width)

        lut_synth = LutSynthesizer(netlist, prefix=func.name)
        dsp_synth = DspSynthesizer(netlist)
        bram_synth = BramSynthesizer(netlist)

        # Pre-allocate register outputs so feedback cycles resolve.
        dsp_buses: Dict[str, List[int]] = {}
        for instr in func.asm_instrs():
            asm_def = self._def_of(instr)
            if not _breaks_cycle(asm_def):
                continue
            if asm_def.prim is Prim.DSP:
                p_bits = netlist.new_bits(DSP_WIDTH)
                pcout_bits = netlist.new_bits(DSP_WIDTH)
                dsp_buses[instr.dst] = p_bits
                dsp_buses[instr.dst + "/PCOUT"] = pcout_bits
                dsp_synth.pcout_of[instr.dst] = pcout_bits
                mode = simd_mode(instr.ty)
                field = SIMD_LANES[mode][0]
                lane_width = instr.ty.lane_type().width
                out: List[int] = []
                for lane in range(instr.ty.lanes):
                    base = lane * field
                    out.extend(p_bits[base : base + lane_width])
                env[instr.dst] = out
            else:  # LUT register or BRAM read port
                env[instr.dst] = netlist.new_bits(instr.ty.width)

        for instr in self._topo_order(func):
            if isinstance(instr, WireInstr):
                arg_bits = [env[arg] for arg in instr.args]
                arg_types = [types[arg] for arg in instr.args]
                env[instr.dst] = wire_bits(instr, arg_bits, arg_types)
                continue
            cells_before = len(netlist.cells)
            asm_def = self._def_of(instr)
            if asm_def.prim is Prim.DSP:
                result = dsp_synth.synth(
                    instr,
                    asm_def,
                    arg_bits={arg: env[arg] for arg in instr.args},
                    arg_types={arg: types[arg] for arg in instr.args},
                    p_bits=dsp_buses.get(instr.dst),
                    pcout_bits=dsp_buses.get(instr.dst + "/PCOUT"),
                )
                if instr.dst not in env:
                    env[instr.dst] = result
            elif asm_def.prim is Prim.BRAM:
                bram_synth.synth(
                    instr,
                    asm_def,
                    arg_bits={arg: env[arg] for arg in instr.args},
                    q_bits=env.get(instr.dst),
                )
            else:
                self._synth_lut_instr(instr, asm_def, env, types, lut_synth)
            if lineage is not None:
                lineage.record_cells(
                    instr.dst,
                    tuple(
                        cell.name
                        for cell in netlist.cells[cells_before:]
                    ),
                )

        for port in func.outputs:
            netlist.add_output(port.name, env[port.name])

        counts = resource_counts(netlist)
        for name, value in counts.as_dict().items():
            tracer.count(f"codegen.{name}", value)
        tracer.count("codegen.cells", len(netlist.cells))
        return netlist

    def _synth_lut_instr(
        self,
        instr: AsmInstr,
        asm_def: AsmDef,
        env: Dict[str, List[int]],
        types: Dict[str, Ty],
        lut_synth: LutSynthesizer,
    ) -> None:
        col, row = instr.loc.position()
        alloc = SliceAllocator(col, row)
        names = NameGenerator(env, prefix=f"_{instr.dst}_g")
        body = expand_asm_instr(instr, asm_def, names)
        local: Dict[str, List[int]] = {}
        local_types: Dict[str, Ty] = {}

        def bits_of(name: str) -> List[int]:
            if name in local:
                return local[name]
            return env[name]

        def type_of(name: str) -> Ty:
            if name in local_types:
                return local_types[name]
            return types[name]

        preallocated = env.get(instr.dst)
        for body_instr in body:
            arg_bits = [bits_of(arg) for arg in body_instr.args]
            out_bits: Optional[List[int]] = None
            if body_instr.dst == instr.dst and preallocated is not None:
                if body_instr.op is not CompOp.REG:
                    raise CodegenError(
                        f"{instr.dst!r}: pre-allocated output is not a "
                        "register"
                    )
                out_bits = preallocated
            result = lut_synth.synth_comp(
                body_instr.op,
                body_instr.ty,
                body_instr.attrs,
                arg_bits,
                alloc,
                out_bits=out_bits,
            )
            local[body_instr.dst] = result
            local_types[body_instr.dst] = body_instr.ty
        if preallocated is None:
            env[instr.dst] = local[instr.dst]


def generate_netlist(
    func: AsmFunc, target: Target, tracer=NULL_TRACER, lineage=None
) -> Netlist:
    """One-shot netlist generation."""
    return CodeGenerator(target).generate(
        func, tracer=tracer, lineage=lineage
    )
