"""Computing LUT ``INIT`` truth-table masks.

A k-input LUT's INIT parameter is a 2^k-bit constant; output bit
``INIT[i]`` is the LUT's value when its inputs spell the index ``i``
(``I0`` is the least significant index bit).
"""

from __future__ import annotations

from typing import Callable


def lut_init(num_inputs: int, fn: Callable[..., int]) -> int:
    """Build an INIT mask for ``fn`` over ``num_inputs`` bits."""
    init = 0
    for index in range(1 << num_inputs):
        bits = [(index >> position) & 1 for position in range(num_inputs)]
        if fn(*bits) & 1:
            init |= 1 << index
    return init


# Common two-input masks (I0, I1).
INIT_AND2 = lut_init(2, lambda a, b: a & b)
INIT_OR2 = lut_init(2, lambda a, b: a | b)
INIT_XOR2 = lut_init(2, lambda a, b: a ^ b)
INIT_XNOR2 = lut_init(2, lambda a, b: (a ^ b) ^ 1)
INIT_NOT1 = lut_init(1, lambda a: a ^ 1)
INIT_BUF1 = lut_init(1, lambda a: a)
# Three-input mux: I0 = select, I1 = taken when select=1, I2 otherwise.
INIT_MUX3 = lut_init(3, lambda sel, a, b: a if sel else b)
# Signed-less-than combiner over (O_msb, CO_msb, CO_msb-1): N ^ V.
INIT_LT3 = lut_init(3, lambda n, c_out, c_in: n ^ c_out ^ c_in)
INIT_GE3 = lut_init(3, lambda n, c_out, c_in: (n ^ c_out ^ c_in) ^ 1)


def and_reduce_init(num_inputs: int) -> int:
    """INIT for an AND of ``num_inputs`` inputs."""
    return lut_init(num_inputs, lambda *bits: int(all(bits)))


def and_reduce_not_init(num_inputs: int) -> int:
    """INIT for a NAND of ``num_inputs`` inputs."""
    return lut_init(num_inputs, lambda *bits: int(not all(bits)))
