"""Code generation: placed assembly -> structural netlist -> Verilog.

"Because of the work of our prior compiler passes, this step is purely
one of generation" (Section 5.4).  Instructions have been selected,
optimized, and placed; here each one expands to configured primitives:
LUT-based instructions become one LUT per bit of computation (plus
carry chains and flip-flops), and DSP-based instructions become a DSP
slice configured for the operation, with every primitive annotated
with its placement coordinate.
"""

from repro.codegen.generate import CodeGenerator, generate_netlist
from repro.codegen.verilog_emit import netlist_to_verilog, generate_verilog

__all__ = [
    "CodeGenerator",
    "generate_netlist",
    "netlist_to_verilog",
    "generate_verilog",
]
