"""Configuring block-RAM primitives for assembly instructions.

The memory-primitive extension (the paper's stated future work): each
BRAM-bound assembly instruction becomes one ``RAMB18E2``-style cell —
a synchronous single-port, read-first RAM with a registered read port.
The model keeps the behaviourally relevant subset of the real
primitive: ``ADDR_WIDTH``/``WIDTH`` geometry, an address/data/write-
enable/clock-enable pin set, and the one-cycle read latency the IR's
``ram`` instruction specifies.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.asm.ast import AsmInstr
from repro.errors import CodegenError
from repro.ir.ast import CompInstr
from repro.ir.ops import CompOp
from repro.netlist.core import Cell, Netlist
from repro.prims import Prim
from repro.tdl.ast import AsmDef

BRAM_KIND = "RAMB18E2"
BRAM_CAPACITY_BITS = 18 * 1024


def configure_bram(instr: AsmInstr, asm_def: AsmDef) -> Dict[str, object]:
    """Derive the cell parameters for one BRAM instruction."""
    body = [b for b in asm_def.body if isinstance(b, CompInstr)]
    if len(body) != 1 or body[0].op is not CompOp.RAM:
        raise CodegenError(
            f"definition {asm_def.name!r} has no BRAM mapping"
        )
    addr_bits = instr.attrs[0] if instr.attrs else body[0].attrs[0]
    width = instr.ty.width
    if (1 << addr_bits) * width > BRAM_CAPACITY_BITS:
        raise CodegenError(
            f"{instr.dst!r}: {1 << addr_bits} x {width} bits exceeds one "
            "18Kb block RAM"
        )
    return {"ADDR_WIDTH": addr_bits, "WIDTH": width}


class BramSynthesizer:
    """Builds BRAM cells for one netlist."""

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist

    def synth(
        self,
        instr: AsmInstr,
        asm_def: AsmDef,
        arg_bits: Dict[str, List[int]],
        q_bits: Optional[List[int]] = None,
    ) -> List[int]:
        """Create the BRAM cell for ``instr``; returns the read bits."""
        params = configure_bram(instr, asm_def)
        col, row = instr.loc.position()
        addr, wdata, wen, enable = (arg_bits[arg] for arg in instr.args)
        if q_bits is None:
            q_bits = self.netlist.new_bits(instr.ty.width)
        self.netlist.add_cell(
            Cell(
                kind=BRAM_KIND,
                name=f"bram_{instr.dst}",
                params=params,
                inputs={
                    "ADDR": addr,
                    "DI": wdata,
                    "WE": [wen[0]],
                    "CE": [enable[0]],
                },
                outputs={"DO": q_bits},
                loc=(Prim.BRAM, col, row),
                bel="BRAM",
            )
        )
        return q_bits
