"""Emission of structural Verilog (with layout attributes) from netlists.

Produces the paper's Figure 2c form: primitive instantiations carrying
``(* LOC = "...", BEL = "..." *)`` placement attributes, ready to hand
to a routing/bitgen back end.  Each cell output pin becomes a named
wire; wire-operation aliasing shows up as plain bit selects and
concatenations, consuming no logic.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import CodegenError
from repro.netlist.core import Cell, GND, Netlist, VCC
from repro.prims import Prim
from repro.verilog.ast import (
    Assign,
    Attribute,
    Concat,
    Expr,
    Index,
    Instance,
    IntLit,
    Item,
    Module,
    Port,
    Ref,
    WireDecl,
)
from repro.verilog.printer import print_module

CLOCK = "clock"


def _loc_attr(cell: Cell) -> List[Attribute]:
    if cell.loc is None:
        return []
    prim, col, row = cell.loc
    if prim is Prim.DSP:
        loc = f"DSP48E2_X{col}Y{row}"
    elif prim is Prim.BRAM:
        loc = f"RAMB18_X{col}Y{row}"
    else:
        loc = f"SLICE_X{col}Y{row}"
    attrs = [Attribute("LOC", loc)]
    if cell.bel and cell.bel not in ("DSP", "BRAM"):
        attrs.append(Attribute("BEL", cell.bel))
    return attrs


def _sanitize(name: str) -> str:
    return name.replace("/", "_").replace(".", "_")


def netlist_to_verilog(netlist: Netlist) -> Module:
    """Convert a netlist into a structural Verilog module."""
    bit_expr: Dict[int, Expr] = {
        GND: IntLit(0, 1),
        VCC: IntLit(1, 1),
    }
    for name, bits in netlist.inputs:
        for index, bit in enumerate(bits):
            bit_expr[bit] = (
                Index(Ref(name), index) if len(bits) > 1 else Ref(name)
            )

    items: List[Item] = []
    for cell in netlist.cells:
        for pin, bits in cell.outputs.items():
            wire_name = _sanitize(f"{cell.name}_{pin}")
            items.append(WireDecl(wire_name, len(bits)))
            for index, bit in enumerate(bits):
                if bit in bit_expr:
                    raise CodegenError(f"bit {bit} has two drivers")
                bit_expr[bit] = (
                    Index(Ref(wire_name), index)
                    if len(bits) > 1
                    else Ref(wire_name)
                )

    def bus_expr(bits: List[int]) -> Expr:
        exprs = [bit_expr[bit] for bit in bits]
        if len(exprs) == 1:
            return exprs[0]
        return Concat(tuple(reversed(exprs)))  # Verilog is MSB-first

    for cell in netlist.cells:
        connections: List[Tuple[str, Expr]] = []
        for pin, bits in cell.inputs.items():
            connections.append((pin, bus_expr(bits)))
        for pin, bits in cell.outputs.items():
            connections.append((pin, Ref(_sanitize(f"{cell.name}_{pin}"))))
        if cell.kind == "FDRE":
            connections.append(("C", Ref(CLOCK)))
        elif cell.kind in ("DSP48E2", "RAMB18E2"):
            connections.append(("CLK", Ref(CLOCK)))
        params: List[Tuple[str, object]] = []
        for name, value in cell.params.items():
            if name == "INIT" and cell.kind.startswith("LUT"):
                width = 1 << len(cell.inputs)
                params.append((name, IntLit(int(value), width)))
            else:
                params.append((name, value))
        items.append(
            Instance(
                module=cell.kind,
                name=_sanitize(cell.name),
                params=tuple(params),  # type: ignore[arg-type]
                connections=tuple(connections),
                attributes=tuple(_loc_attr(cell)),
            )
        )

    ports: List[Port] = [Port("input", CLOCK, 1)]
    for name, bits in netlist.inputs:
        ports.append(Port("input", name, len(bits)))
    for name, bits in netlist.outputs:
        ports.append(Port("output", name, len(bits)))
        items.append(Assign(Ref(name), bus_expr(bits)))

    return Module(
        name=netlist.name,
        ports=tuple(ports),
        items=tuple(items),
    )


def generate_verilog(netlist: Netlist) -> str:
    """Render a netlist as structural Verilog text."""
    return print_module(netlist_to_verilog(netlist))
