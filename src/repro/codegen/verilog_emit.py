"""Emission of structural Verilog (with layout attributes) from netlists.

Produces the paper's Figure 2c form: primitive instantiations carrying
``(* LOC = "...", BEL = "..." *)`` placement attributes, ready to hand
to a routing/bitgen back end.  Each cell output pin becomes a named
wire; wire-operation aliasing shows up as plain bit selects and
concatenations, consuming no logic.

Two rendering paths share the same per-cell builders:

* :func:`netlist_to_verilog` materializes the whole :class:`Module`
  AST (round-trippable, used by tests and tooling);
* :func:`emit_verilog_chunks` streams the identical source text as an
  iterator of chunks — O(chunk) resident text instead of one giant
  string, which is what device-filling programs need.  The two paths
  are byte-identical by construction: the stream renders the same
  items through the same printer, line by line.

:func:`generate_verilog` is the streaming path joined, so every caller
of the classic facade exercises the chunked emitter.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.errors import CodegenError
from repro.netlist.core import Cell, GND, Netlist, VCC
from repro.obs import NULL_TRACER
from repro.prims import Prim
from repro.verilog.ast import (
    Assign,
    Attribute,
    Concat,
    Expr,
    Index,
    Instance,
    IntLit,
    Item,
    Module,
    Port,
    Ref,
    WireDecl,
)
from repro.verilog.printer import (
    INDENT,
    print_item,
    print_module,
    print_ports,
)

CLOCK = "clock"

#: Default streaming granularity: source lines per yielded chunk.
CHUNK_LINES = 1024


def _loc_attr(cell: Cell) -> List[Attribute]:
    if cell.loc is None:
        return []
    prim, col, row = cell.loc
    if prim is Prim.DSP:
        loc = f"DSP48E2_X{col}Y{row}"
    elif prim is Prim.BRAM:
        loc = f"RAMB18_X{col}Y{row}"
    else:
        loc = f"SLICE_X{col}Y{row}"
    attrs = [Attribute("LOC", loc)]
    if cell.bel and cell.bel not in ("DSP", "BRAM"):
        attrs.append(Attribute("BEL", cell.bel))
    return attrs


def _sanitize(name: str) -> str:
    return name.replace("/", "_").replace(".", "_")


def _input_bit_exprs(netlist: Netlist) -> Dict[int, Expr]:
    """The initial bit -> expression map: constants and input ports."""
    bit_expr: Dict[int, Expr] = {
        GND: IntLit(0, 1),
        VCC: IntLit(1, 1),
    }
    for name, bits in netlist.inputs:
        for index, bit in enumerate(bits):
            bit_expr[bit] = (
                Index(Ref(name), index) if len(bits) > 1 else Ref(name)
            )
    return bit_expr


def _cell_wires(cell: Cell, bit_expr: Dict[int, Expr]) -> Iterator[WireDecl]:
    """Declare one cell's output wires, registering their bits."""
    for pin, bits in cell.outputs.items():
        wire_name = _sanitize(f"{cell.name}_{pin}")
        yield WireDecl(wire_name, len(bits))
        for index, bit in enumerate(bits):
            if bit in bit_expr:
                raise CodegenError(f"bit {bit} has two drivers")
            bit_expr[bit] = (
                Index(Ref(wire_name), index)
                if len(bits) > 1
                else Ref(wire_name)
            )


def _bus_expr(bits: List[int], bit_expr: Dict[int, Expr]) -> Expr:
    exprs = [bit_expr[bit] for bit in bits]
    if len(exprs) == 1:
        return exprs[0]
    return Concat(tuple(reversed(exprs)))  # Verilog is MSB-first


def _cell_instance(cell: Cell, bit_expr: Dict[int, Expr]) -> Instance:
    """One cell's primitive instantiation."""
    connections: List[Tuple[str, Expr]] = []
    for pin, bits in cell.inputs.items():
        connections.append((pin, _bus_expr(bits, bit_expr)))
    for pin, bits in cell.outputs.items():
        connections.append((pin, Ref(_sanitize(f"{cell.name}_{pin}"))))
    if cell.kind == "FDRE":
        connections.append(("C", Ref(CLOCK)))
    elif cell.kind in ("DSP48E2", "RAMB18E2"):
        connections.append(("CLK", Ref(CLOCK)))
    params: List[Tuple[str, object]] = []
    for name, value in cell.params.items():
        if name == "INIT" and cell.kind.startswith("LUT"):
            width = 1 << len(cell.inputs)
            params.append((name, IntLit(int(value), width)))
        else:
            params.append((name, value))
    return Instance(
        module=cell.kind,
        name=_sanitize(cell.name),
        params=tuple(params),  # type: ignore[arg-type]
        connections=tuple(connections),
        attributes=tuple(_loc_attr(cell)),
    )


def _module_ports(netlist: Netlist) -> List[Port]:
    ports: List[Port] = [Port("input", CLOCK, 1)]
    for name, bits in netlist.inputs:
        ports.append(Port("input", name, len(bits)))
    for name, bits in netlist.outputs:
        ports.append(Port("output", name, len(bits)))
    return ports


def netlist_to_verilog(netlist: Netlist) -> Module:
    """Convert a netlist into a structural Verilog module."""
    bit_expr = _input_bit_exprs(netlist)

    items: List[Item] = []
    for cell in netlist.cells:
        items.extend(_cell_wires(cell, bit_expr))
    for cell in netlist.cells:
        items.append(_cell_instance(cell, bit_expr))
    ports = _module_ports(netlist)
    for name, bits in netlist.outputs:
        items.append(Assign(Ref(name), _bus_expr(bits, bit_expr)))

    return Module(
        name=netlist.name,
        ports=tuple(ports),
        items=tuple(items),
    )


def _module_lines(netlist: Netlist) -> Iterator[str]:
    """The module's source lines, lazily, in :func:`print_module` order.

    The wire-declaration pass streams too: declaring a cell's wires
    registers its output bits, and every instance is rendered only
    after all declarations, so the bit map is complete exactly when
    the first consumer needs it.
    """
    bit_expr = _input_bit_exprs(netlist)
    yield f"module {netlist.name}(" + print_ports(_module_ports(netlist)) + ");"
    for cell in netlist.cells:
        for item in _cell_wires(cell, bit_expr):
            for text in print_item(item):
                yield INDENT + text
    for cell in netlist.cells:
        for text in print_item(_cell_instance(cell, bit_expr)):
            yield INDENT + text
    for name, bits in netlist.outputs:
        item = Assign(Ref(name), _bus_expr(bits, bit_expr))
        for text in print_item(item):
            yield INDENT + text
    yield "endmodule"


def emit_verilog_chunks(
    netlist: Netlist,
    chunk_lines: int = CHUNK_LINES,
    tracer=NULL_TRACER,
) -> Iterator[str]:
    """Stream a netlist's Verilog as text chunks.

    Joining the chunks with ``""`` reproduces
    ``print_module(netlist_to_verilog(netlist))`` byte for byte; only
    ``chunk_lines`` source lines are resident at a time.  Each yielded
    chunk bumps the ``codegen.chunks`` counter.
    """
    if chunk_lines < 1:
        raise ValueError(f"chunk_lines must be positive: {chunk_lines}")
    buffer: List[str] = []
    first = True
    for line in _module_lines(netlist):
        buffer.append(line)
        if len(buffer) >= chunk_lines:
            text = "\n".join(buffer)
            buffer.clear()
            tracer.count("codegen.chunks")
            yield text if first else "\n" + text
            first = False
    if buffer or first:
        text = "\n".join(buffer)
        tracer.count("codegen.chunks")
        yield text if first else "\n" + text


def generate_verilog(netlist: Netlist, tracer=NULL_TRACER) -> str:
    """Render a netlist as structural Verilog text."""
    return "".join(emit_verilog_chunks(netlist, tracer=tracer))
