"""Synchronous simulation of structural netlists.

The simulator mirrors the reference interpreter's schedule (Algorithm
1) at the primitive level: per cycle, drive the input ports, propagate
combinational cells in dependency order, sample the outputs, then
clock the sequential cells (FDRE, registered DSPs) with
compute-all-then-commit semantics.  Differential tests run the same
trace through the IR interpreter and this simulator and require
identical output traces.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Mapping

from repro.errors import SimulationError
from repro.ir.trace import Trace, decode_value, encode_value
from repro.ir.types import Ty
from repro.netlist.core import Cell, GND, Netlist, VCC
from repro.netlist.primitives import (
    bits_to_int,
    dsp_registered_pins,
    eval_carry8,
    eval_dsp_comb,
    eval_lut,
    int_to_bits,
)


class NetlistSimulator:
    """A reusable simulator for one netlist.

    ``port_types`` gives the source-level type of every input and
    output port so traces can use the same user-facing values as the
    IR interpreter.
    """

    def __init__(self, netlist: Netlist, port_types: Mapping[str, Ty]) -> None:
        self.netlist = netlist
        self.port_types = dict(port_types)
        for name, _ in netlist.inputs + netlist.outputs:
            if name not in self.port_types:
                raise SimulationError(f"missing type for port {name!r}")
        self._drivers = netlist.driver_map()
        self._comb_order = self._levelize()
        # Block-RAM contents, keyed by cell identity.
        self._bram_state: Dict[int, List[int]] = {}
        for cell in netlist.cells:
            if cell.kind == "RAMB18E2":
                depth = 1 << int(cell.params.get("ADDR_WIDTH", 0))
                self._bram_state[id(cell)] = [0] * depth
        # Internal DSP pipeline registers (AREG/BREG/CREG), keyed by
        # cell identity: pin -> registered value.
        self._dsp_state: Dict[int, Dict[str, int]] = {}
        for cell in netlist.cells:
            if cell.kind == "DSP48E2":
                registered = dsp_registered_pins(cell.params)
                if registered and not cell.is_sequential:
                    raise SimulationError(
                        f"{cell.name!r}: input registers require PREG=1"
                    )
                self._dsp_state[id(cell)] = {pin: 0 for pin in registered}

    def _levelize(self) -> List[Cell]:
        comb = [cell for cell in self.netlist.cells if not cell.is_sequential]
        index_of = {id(cell): i for i, cell in enumerate(comb)}
        dependents: List[List[int]] = [[] for _ in comb]
        in_degree = [0] * len(comb)
        for i, cell in enumerate(comb):
            for bit in cell.input_bits():
                driver = self._drivers.get(bit)
                if driver is None or driver.is_sequential:
                    continue
                j = index_of[id(driver)]
                dependents[j].append(i)
                in_degree[i] += 1
        ready = deque(i for i, degree in enumerate(in_degree) if degree == 0)
        order: List[Cell] = []
        while ready:
            node = ready.popleft()
            order.append(comb[node])
            for succ in dependents[node]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(comb):
            raise SimulationError("combinational loop in netlist")
        return order

    def _initial_values(self) -> List[int]:
        values = [0] * self.netlist.num_bits
        values[VCC] = 1
        for cell in self.netlist.cells:
            if cell.kind == "FDRE":
                values[cell.outputs["Q"][0]] = int(cell.params.get("INIT", 0))
            elif cell.kind == "DSP48E2" and cell.is_sequential:
                init = int(cell.params.get("INIT", 0))
                p_bits = cell.outputs["P"]
                for bit, value in zip(p_bits, int_to_bits(init, len(p_bits))):
                    values[bit] = value
                for bit, value in zip(
                    cell.outputs.get("PCOUT", ()), int_to_bits(init, 48)
                ):
                    values[bit] = value
            # BRAM read ports reset to zero (already the default).
        return values

    def _eval_cell(self, cell: Cell, values: List[int]) -> None:
        if cell.kind.startswith("LUT"):
            init = int(cell.params["INIT"])
            input_bits = [
                values[cell.inputs[f"I{i}"][0]] for i in range(len(cell.inputs))
            ]
            values[cell.outputs["O"][0]] = eval_lut(init, input_bits)
            return
        if cell.kind == "CARRY8":
            result = eval_carry8(
                [values[b] for b in cell.inputs["S"]],
                [values[b] for b in cell.inputs["DI"]],
                values[cell.inputs["CI"][0]],
            )
            for pin in ("O", "CO"):
                for bit, value in zip(cell.outputs[pin], result[pin]):
                    values[bit] = value
            return
        if cell.kind == "DSP48E2":
            result = self._dsp_comb(cell, values)
            for bit, value in zip(cell.outputs["P"], int_to_bits(result, 48)):
                values[bit] = value
            for bit, value in zip(
                cell.outputs.get("PCOUT", ()), int_to_bits(result, 48)
            ):
                values[bit] = value
            return
        raise SimulationError(f"cannot evaluate cell kind {cell.kind!r}")

    def _dsp_comb(self, cell: Cell, values: List[int]) -> int:
        pins = {
            pin: bits_to_int([values[b] for b in bits])
            for pin, bits in cell.inputs.items()
        }
        # Registered input pins read the internal pipeline register.
        state = self._dsp_state.get(id(cell), {})
        pins.update(state)
        return eval_dsp_comb(cell.params, pins)

    def run(self, trace: Trace) -> Trace:
        """Simulate the netlist over an input trace."""
        for name, _ in self.netlist.inputs:
            if name not in trace:
                raise SimulationError(f"input trace missing port {name!r}")

        values = self._initial_values()
        for state in self._dsp_state.values():
            for pin in state:
                state[pin] = 0
        for memory in self._bram_state.values():
            for index in range(len(memory)):
                memory[index] = 0
        sequential = [
            cell for cell in self.netlist.cells if cell.is_sequential
        ]
        result = Trace()
        for step in trace.steps():
            for name, bits in self.netlist.inputs:
                pattern = encode_value(step[name], self.port_types[name])
                for bit, value in zip(bits, int_to_bits(pattern, len(bits))):
                    values[bit] = value
            values[GND] = 0
            values[VCC] = 1

            for cell in self._comb_order:
                self._eval_cell(cell, values)

            step_out = {}
            for name, bits in self.netlist.outputs:
                pattern = bits_to_int([values[b] for b in bits])
                step_out[name] = decode_value(pattern, self.port_types[name])
            result.push(step_out)

            # Clock edge: compute every register's next value, then commit.
            updates: List[tuple] = []
            state_updates: List[tuple] = []
            for cell in sequential:
                if cell.kind == "FDRE":
                    if values[cell.inputs["CE"][0]]:
                        updates.append(
                            (cell.outputs["Q"], [values[cell.inputs["D"][0]]])
                        )
                elif cell.kind == "RAMB18E2":
                    if values[cell.inputs["CE"][0]]:
                        memory = self._bram_state[id(cell)]
                        addr = bits_to_int(
                            [values[b] for b in cell.inputs["ADDR"]]
                        )
                        # Read-first: register the old word, then write.
                        word = memory[addr]
                        updates.append(
                            (
                                cell.outputs["DO"],
                                int_to_bits(word, len(cell.outputs["DO"])),
                            )
                        )
                        if values[cell.inputs["WE"][0]]:
                            memory[addr] = bits_to_int(
                                [values[b] for b in cell.inputs["DI"]]
                            )
                else:  # registered DSP
                    enable_bits = cell.inputs.get("CE")
                    enabled = values[enable_bits[0]] if enable_bits else 1
                    if enabled:
                        # P latches the value computed from the *old*
                        # input registers; the input registers latch the
                        # live pins — all committed together below.
                        next_value = self._dsp_comb(cell, values)
                        bits48 = int_to_bits(next_value, 48)
                        updates.append((cell.outputs["P"], bits48))
                        if "PCOUT" in cell.outputs:
                            updates.append((cell.outputs["PCOUT"], bits48))
                        state = self._dsp_state.get(id(cell), {})
                        for pin in state:
                            state_updates.append(
                                (
                                    state,
                                    pin,
                                    bits_to_int(
                                        [values[b] for b in cell.inputs[pin]]
                                    ),
                                )
                            )
            for bits, new_values in updates:
                for bit, value in zip(bits, new_values):
                    values[bit] = value
            for state, pin, value in state_updates:
                state[pin] = value
        return result
