"""Executable models of the device primitives.

Each function evaluates one cell kind over bit values.  The DSP model
is a documented simplification of the 96-parameter DSP48E2 down to the
behaviourally relevant subset (see DESIGN.md): a 27x18 signed
multiplier, a 48-bit SIMD-capable ALU (``ONE48``/``TWO24``/``FOUR12``),
an optional output register ``PREG`` with clock enable, and the
``PCIN``/``PCOUT`` cascade path.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import SimulationError
from repro.utils.bits import to_signed, to_unsigned, truncate

SIMD_LANES: Dict[str, List[int]] = {
    "ONE48": [48],
    "TWO24": [24, 24],
    "FOUR12": [12, 12, 12, 12],
}


def bits_to_int(bits: Sequence[int]) -> int:
    """Pack bit values (LSB first) into an integer."""
    value = 0
    for index, bit in enumerate(bits):
        value |= (bit & 1) << index
    return value


def int_to_bits(value: int, width: int) -> List[int]:
    """Unpack an integer into bit values (LSB first)."""
    return [(value >> index) & 1 for index in range(width)]


def eval_lut(init: int, input_bits: Sequence[int]) -> int:
    """A k-input LUT: index the INIT truth table by the input bits."""
    index = bits_to_int(input_bits)
    return (init >> index) & 1


def eval_carry8(
    s_bits: Sequence[int], di_bits: Sequence[int], ci: int
) -> Dict[str, List[int]]:
    """The CARRY8 carry chain.

    ``S`` is the per-bit propagate signal, ``DI`` the generate signal,
    ``CI`` the carry in.  ``O[i] = S[i] ^ c_i`` and the carry ripples
    as ``c_{i+1} = S[i] ? c_i : DI[i]``.
    """
    carry = ci & 1
    o_bits: List[int] = []
    co_bits: List[int] = []
    for s, di in zip(s_bits, di_bits):
        o_bits.append((s ^ carry) & 1)
        carry = carry if s else (di & 1)
        co_bits.append(carry)
    return {"O": o_bits, "CO": co_bits}


def _alu(op: str, a: int, b: int, lanes: List[int]) -> int:
    result = 0
    offset = 0
    for width in lanes:
        mask = (1 << width) - 1
        lane_a = (a >> offset) & mask
        lane_b = (b >> offset) & mask
        if op == "ADD":
            lane = (lane_a + lane_b) & mask
        elif op == "SUB":
            lane = (lane_a - lane_b) & mask
        else:  # pragma: no cover - guarded by caller
            raise SimulationError(f"unknown ALU op: {op}")
        result |= lane << offset
        offset += width
    return result


REGISTERED_PIN_PARAMS = {"A": "AREG", "B": "BREG", "C": "CREG"}


def dsp_registered_pins(params: Dict[str, object]) -> List[str]:
    """Input pins latched by internal pipeline registers."""
    return [
        pin
        for pin, param in REGISTERED_PIN_PARAMS.items()
        if int(params.get(param, 0) or 0)
    ]


def eval_dsp_comb(params: Dict[str, object], pins: Dict[str, int]) -> int:
    """The DSP's combinational function, producing the 48-bit result."""
    op = str(params.get("OP", "ADD"))
    simd = str(params.get("USE_SIMD", "ONE48"))
    lanes = SIMD_LANES.get(simd)
    if lanes is None:
        raise SimulationError(f"unknown USE_SIMD mode: {simd}")

    a = pins.get("A", 0)
    b = pins.get("B", 0)
    if op in ("ADD", "SUB"):
        return _alu(op, a, b, lanes)

    if simd != "ONE48":
        raise SimulationError(f"{op} requires ONE48, found {simd}")
    product = to_signed(truncate(a, 27), 27) * to_signed(truncate(b, 18), 18)
    if op == "MUL":
        return to_unsigned(product, 48)
    if op == "MULADD":
        if str(params.get("CASCADE_IN", "NONE")) == "PCIN":
            addend = pins.get("PCIN", 0)
        else:
            addend = pins.get("C", 0)
        return truncate(to_unsigned(product, 48) + addend, 48)
    raise SimulationError(f"unknown DSP op: {op}")
