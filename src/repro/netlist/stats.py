"""Resource accounting over netlists (the utilization numbers the
paper's Figure 4 and Figure 13 report)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.netlist.core import Netlist


@dataclass(frozen=True)
class ResourceCounts:
    """Primitive counts for one netlist."""

    luts: int
    ffs: int
    carries: int
    dsps: int
    brams: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "luts": self.luts,
            "ffs": self.ffs,
            "carries": self.carries,
            "dsps": self.dsps,
            "brams": self.brams,
        }


def resource_counts(netlist: Netlist) -> ResourceCounts:
    """Count LUTs, FFs, carry blocks, DSPs, and BRAMs in a netlist."""
    luts = ffs = carries = dsps = brams = 0
    for cell in netlist.cells:
        if cell.kind.startswith("LUT"):
            luts += 1
        elif cell.kind == "FDRE":
            ffs += 1
        elif cell.kind == "CARRY8":
            carries += 1
        elif cell.kind == "DSP48E2":
            dsps += 1
        elif cell.kind == "RAMB18E2":
            brams += 1
    return ResourceCounts(
        luts=luts, ffs=ffs, carries=carries, dsps=dsps, brams=brams
    )
