"""Rebuilding a netlist from emitted structural Verilog.

The inverse of :mod:`repro.codegen.verilog_emit` for the subset the
toolchain produces.  Used by the differential tests to prove the
*textual* artifact — not just the in-memory netlist — is correct:
``netlist -> Verilog text -> parse -> netlist`` must simulate
identically.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple, Union

from repro.errors import CodegenError
from repro.netlist.core import Cell, GND, Netlist, VCC
from repro.prims import Prim
from repro.verilog.ast import (
    Assign,
    Concat,
    Expr,
    Index,
    Instance,
    IntLit,
    Module,
    Ref,
    Slice,
    WireDecl,
)
from repro.verilog.parser import parse_verilog_module

# Output pins per primitive kind; everything else on the cell is an
# input (clock pins are dropped entirely).
_OUTPUT_PINS = {
    "LUT1": ("O",),
    "LUT2": ("O",),
    "LUT3": ("O",),
    "LUT4": ("O",),
    "LUT5": ("O",),
    "LUT6": ("O",),
    "CARRY8": ("O", "CO"),
    "FDRE": ("Q",),
    "DSP48E2": ("P", "PCOUT"),
    "RAMB18E2": ("DO",),
}
# Clock pins are dropped; note "C" is FDRE's clock but DSP data.
_CLOCK_PINS = {
    "FDRE": {"C"},
    "DSP48E2": {"CLK"},
    "RAMB18E2": {"CLK"},
}

_LOC_PATTERN = re.compile(r"^(SLICE|DSP48E2|RAMB18)_X(\d+)Y(\d+)$")


def _parse_loc(value: str) -> Tuple[Prim, int, int]:
    match = _LOC_PATTERN.match(value)
    if match is None:
        raise CodegenError(f"unparsable LOC attribute: {value!r}")
    prims = {"DSP48E2": Prim.DSP, "RAMB18": Prim.BRAM, "SLICE": Prim.LUT}
    prim = prims[match.group(1)]
    return (prim, int(match.group(2)), int(match.group(3)))


def _param_value(value: Union[int, str, IntLit]) -> object:
    if isinstance(value, IntLit):
        return value.value
    return value


class _Builder:
    def __init__(self, module: Module) -> None:
        self.module = module
        self.netlist = Netlist(name=module.name)
        self.env: Dict[str, List[int]] = {}

    def _eval(self, expr: Expr) -> List[int]:
        if isinstance(expr, Ref):
            bits = self.env.get(expr.name)
            if bits is None:
                raise CodegenError(f"undeclared net {expr.name!r}")
            return list(bits)
        if isinstance(expr, Index):
            assert isinstance(expr.target, Ref)
            return [self._eval(expr.target)[expr.index]]
        if isinstance(expr, Slice):
            assert isinstance(expr.target, Ref)
            return self._eval(expr.target)[expr.lo : expr.hi + 1]
        if isinstance(expr, Concat):
            # Verilog concatenation is MSB first; bits are LSB first.
            bits: List[int] = []
            for part in reversed(expr.parts):
                bits.extend(self._eval(part))
            return bits
        if isinstance(expr, IntLit):
            width = expr.width if expr.width is not None else 1
            return [
                VCC if (expr.value >> position) & 1 else GND
                for position in range(width)
            ]
        raise CodegenError(f"unsupported expression: {type(expr).__name__}")

    def build(self) -> Netlist:
        for port in self.module.ports:
            if port.direction != "input" or port.name == "clock":
                continue
            self.env[port.name] = self.netlist.add_input(port.name, port.width)

        # Wires first: instance pins may reference wires declared later
        # in other dialects, but the emitter declares them up front.
        for item in self.module.items:
            if isinstance(item, WireDecl):
                self.env[item.name] = self.netlist.new_bits(item.width)

        for item in self.module.items:
            if isinstance(item, Instance):
                self._add_instance(item)
            elif isinstance(item, Assign):
                self._add_assign(item)
            elif not isinstance(item, WireDecl):
                raise CodegenError(
                    f"unsupported item: {type(item).__name__}"
                )
        return self.netlist

    def _add_instance(self, item: Instance) -> None:
        output_pins = _OUTPUT_PINS.get(item.module)
        if output_pins is None:
            raise CodegenError(f"unknown primitive {item.module!r}")
        clock_pins = _CLOCK_PINS.get(item.module, set())
        inputs: Dict[str, List[int]] = {}
        outputs: Dict[str, List[int]] = {}
        for pin, expr in item.connections:
            if pin in clock_pins:
                continue
            if pin in output_pins:
                if not isinstance(expr, Ref):
                    raise CodegenError(
                        f"{item.name!r}: output pin {pin} must connect "
                        "to a whole wire"
                    )
                outputs[pin] = self._eval(expr)
            else:
                inputs[pin] = self._eval(expr)

        loc = None
        bel = None
        for attribute in item.attributes:
            if attribute.name == "LOC":
                loc = _parse_loc(attribute.value)
            elif attribute.name == "BEL":
                bel = attribute.value
        if loc is not None and bel is None and item.module == "DSP48E2":
            bel = "DSP"
        if loc is not None and bel is None and item.module == "RAMB18E2":
            bel = "BRAM"

        self.netlist.add_cell(
            Cell(
                kind=item.module,
                name=item.name,
                params={
                    name: _param_value(value) for name, value in item.params
                },
                inputs=inputs,
                outputs=outputs,
                loc=loc,
                bel=bel,
            )
        )

    def _add_assign(self, item: Assign) -> None:
        if not isinstance(item.lhs, Ref):
            raise CodegenError("assign targets must be whole nets")
        name = item.lhs.name
        directions = {
            port.name: port.direction for port in self.module.ports
        }
        if directions.get(name) != "output":
            raise CodegenError(
                f"assign to {name!r}: only output ports are assigned in "
                "emitted structural Verilog"
            )
        self.netlist.add_output(name, self._eval(item.rhs))


def netlist_from_verilog(source: str) -> Netlist:
    """Parse structural Verilog text and rebuild the netlist."""
    return _Builder(parse_verilog_module(source)).build()
