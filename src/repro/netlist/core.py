"""The netlist data model.

A netlist is a set of single-bit nets and the primitive cells that
read and drive them.  Wire operations of the source program never
become cells: slicing, concatenation, constant shifts, and constants
are pure *aliasing* of bits (plus the constant rails), exactly the
"area-free, only involves wiring" semantics of Section 4.1.

Bits are integers.  Bit 0 is the constant ground rail (GND) and bit 1
the constant power rail (VCC); everything else is allocated with
:meth:`Netlist.new_bits`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.prims import Prim

GND = 0
VCC = 1

# Output pins that are registered (sequential) per cell kind.  FDRE's Q
# is always sequential; the DSP's outputs are sequential iff PREG=1.
_SEQUENTIAL_KINDS = ("FDRE", "RAMB18E2")


@dataclass
class Cell:
    """One primitive instance.

    ``inputs``/``outputs`` map pin names to bit lists (LSB first).
    ``loc`` is the placed position ``(prim, column, row)``; ``bel``
    names the basic element within the slice (``A6LUT``...).
    """

    kind: str
    name: str
    params: Dict[str, object] = field(default_factory=dict)
    inputs: Dict[str, List[int]] = field(default_factory=dict)
    outputs: Dict[str, List[int]] = field(default_factory=dict)
    loc: Optional[Tuple[Prim, int, int]] = None
    bel: Optional[str] = None

    @property
    def is_sequential(self) -> bool:
        if self.kind in _SEQUENTIAL_KINDS:
            return True
        if self.kind == "DSP48E2":
            return bool(self.params.get("PREG", 0))
        return False

    def input_bits(self) -> List[int]:
        bits: List[int] = []
        for pins in self.inputs.values():
            bits.extend(pins)
        return bits

    def output_bits(self) -> List[int]:
        bits: List[int] = []
        for pins in self.outputs.values():
            bits.extend(pins)
        return bits

    def position(self) -> Optional[Tuple[int, int]]:
        if self.loc is None:
            return None
        return (self.loc[1], self.loc[2])


@dataclass
class Netlist:
    """A design: ports, cells, and the bits connecting them."""

    name: str
    num_bits: int = 2  # GND and VCC pre-allocated
    inputs: List[Tuple[str, List[int]]] = field(default_factory=list)
    outputs: List[Tuple[str, List[int]]] = field(default_factory=list)
    cells: List[Cell] = field(default_factory=list)

    def new_bits(self, count: int) -> List[int]:
        """Allocate ``count`` fresh bits."""
        bits = list(range(self.num_bits, self.num_bits + count))
        self.num_bits += count
        return bits

    def add_input(self, name: str, width: int) -> List[int]:
        bits = self.new_bits(width)
        self.inputs.append((name, bits))
        return bits

    def add_output(self, name: str, bits: List[int]) -> None:
        self.outputs.append((name, list(bits)))

    def add_cell(self, cell: Cell) -> Cell:
        self.cells.append(cell)
        return cell

    def driver_map(self) -> Dict[int, Cell]:
        """Map each cell-driven bit to its driving cell.

        Bits driven by more than one cell are a construction bug and
        raise; input-port and constant bits are absent from the map.
        """
        drivers: Dict[int, Cell] = {}
        for cell in self.cells:
            for bit in cell.output_bits():
                if bit in drivers:
                    raise SimulationError(
                        f"bit {bit} driven by both {drivers[bit].name!r} "
                        f"and {cell.name!r}"
                    )
                drivers[bit] = cell
        return drivers

    def input_bit_set(self) -> set:
        bits = set()
        for _, port_bits in self.inputs:
            bits.update(port_bits)
        return bits
