"""Structural netlists of FPGA primitives.

The code generator lowers placed assembly programs to netlists of
device primitives (LUT1-6, CARRY8, FDRE, DSP48E2); this package holds
the netlist data model, executable models of each primitive, a
synchronous simulator used for differential testing against the IR
interpreter, and resource accounting.
"""

from repro.netlist.core import Cell, Netlist, GND, VCC
from repro.netlist.sim import NetlistSimulator
from repro.netlist.stats import resource_counts

__all__ = [
    "Cell",
    "Netlist",
    "GND",
    "VCC",
    "NetlistSimulator",
    "resource_counts",
]
