"""The idiom x target conformance matrix (paper Table 1, as a gate).

The paper's portability claim is that one intermediate instruction set
programs every target family; the conformance matrix turns that claim
into a checked contract.  Every *frontend idiom* — each operation of
the intermediate instruction set instantiated at each representative
type shape — is compiled to every registered target and co-simulated
cycle for cycle against the reference IR interpreter.  A cell may
legitimately be *unsupported* (a fabric with no 32-bit datapath, a
library with no block RAM), but then it must say so with a typed
:class:`~repro.errors.ReticleError`, and the expectation is recorded
here, in :func:`expected_unsupported` — silent feature loss and
untyped crashes both fail the matrix.

The idiom registry doubles as a **coverage ratchet**: it is checked
against the :class:`~repro.ir.ops.CompOp` and
:class:`~repro.ir.ops.WireOp` enums, so adding a frontend operation
without adding matrix rows for it fails the build
(:func:`uncovered_ops`).

Representative shapes are chosen to straddle every support boundary in
the registered libraries: ``i8`` (everywhere), ``i16`` (the iCE40 EBR
data-width boundary), ``i32`` (the iCE40 scalar-width ceiling),
``i8<4>`` (the common SIMD shape), and ``i24<2>`` (the vector shape
the big fabrics have and the small one does not).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.asm.interp import AsmInterpreter
from repro.compiler import ReticleCompiler, registered_targets, resolve_target
from repro.errors import ReticleError
from repro.ir.ast import Func
from repro.ir.interp import Interpreter, Trace
from repro.ir.ops import CompOp, WireOp
from repro.utils.pool import resolve_jobs
from repro.ir.parser import parse_func
from repro.ir.types import Bool, Int, Vec

#: Cycles of stimulus each cell is co-simulated for.
TRACE_STEPS = 6


@dataclass(frozen=True)
class Idiom:
    """One frontend idiom: an operation at a representative type shape.

    ``source`` is a complete one-idiom IR function (named ``cell``)
    whose output depends on the idiom under test; ``lane_width`` and
    ``is_vector`` describe the shape for the expectation rules, and
    ``addr_bits`` is the RAM address width (0 otherwise).
    """

    name: str
    op: str
    shape: str
    source: str
    lane_width: int
    is_vector: bool
    addr_bits: int = 0

    def func(self) -> Func:
        return parse_func(self.source)


_SHAPES: Dict[str, Tuple[int, bool]] = {
    "bool": (1, False),
    "i4": (4, False),
    "i8": (8, False),
    "i16": (16, False),
    "i32": (32, False),
    "i8<4>": (8, True),
    "i24<2>": (24, True),
}


def _idiom(op: str, shape: str, body: str, inputs: str, **kw) -> Idiom:
    lane_width, is_vector = _SHAPES[shape]
    slug = shape.replace("<", "x").replace(">", "")
    return Idiom(
        name=f"{op}_{slug}",
        op=op,
        shape=shape,
        source=f"def cell({inputs}) -> (y: {shape}) {{\n{body}\n}}",
        lane_width=lane_width,
        is_vector=is_vector,
        **kw,
    )


def _binary(op: str, shape: str) -> Idiom:
    return _idiom(
        op, shape,
        f"    y: {shape} = {op}(a, b);",
        f"a: {shape}, b: {shape}",
    )


def _compare(op: str, shape: str) -> Idiom:
    lane_width, is_vector = _SHAPES[shape]
    slug = shape.replace("<", "x").replace(">", "")
    return Idiom(
        name=f"{op}_{slug}",
        op=op,
        shape=shape,
        source=(
            f"def cell(a: {shape}, b: {shape}) -> (y: bool) {{\n"
            f"    y: bool = {op}(a, b);\n}}"
        ),
        lane_width=lane_width,
        is_vector=is_vector,
    )


def _build_idioms() -> Tuple[Idiom, ...]:
    idioms: List[Idiom] = []
    for op in ("add", "sub"):
        for shape in ("i8", "i16", "i32", "i8<4>", "i24<2>"):
            idioms.append(_binary(op, shape))
    for shape in ("i8", "i16", "i32", "i8<4>"):
        idioms.append(_binary("mul", shape))
    for op in ("and", "or", "xor"):
        for shape in ("bool", "i8", "i32", "i8<4>"):
            idioms.append(_binary(op, shape))
    for shape in ("bool", "i8", "i32", "i8<4>"):
        idioms.append(
            _idiom("not", shape, f"    y: {shape} = not(a);", f"a: {shape}")
        )
    for op in ("eq", "neq"):
        for shape in ("bool", "i8", "i32"):
            idioms.append(_compare(op, shape))
    for op in ("lt", "gt", "le", "ge"):
        for shape in ("i8", "i32"):
            idioms.append(_compare(op, shape))
    for shape in ("bool", "i8", "i32", "i8<4>"):
        idioms.append(
            _idiom(
                "mux", shape,
                f"    y: {shape} = mux(cond, a, b);",
                f"cond: bool, a: {shape}, b: {shape}",
            )
        )
        idioms.append(
            _idiom(
                "reg", shape,
                f"    y: {shape} = reg[0](a, en);",
                f"a: {shape}, en: bool",
            )
        )
    for shape, addr_bits in (("i8", 4), ("i8", 8), ("i16", 10)):
        lane_width, _ = _SHAPES[shape]
        idioms.append(
            Idiom(
                name=f"ram_{shape}_a{addr_bits}",
                op="ram",
                shape=shape,
                source=(
                    f"def cell(addr: i{addr_bits}, wdata: {shape}, "
                    f"wen: bool, en: bool) -> (y: {shape}) {{\n"
                    f"    y: {shape} = ram[{addr_bits}]"
                    f"(addr, wdata, wen, en);\n}}"
                ),
                lane_width=lane_width,
                is_vector=False,
                addr_bits=addr_bits,
            )
        )
    # Wire idioms route through one compute op so the cell still
    # exercises selection; the wire op itself is area-free on every
    # fabric and must survive to the assembly unchanged.
    for op in ("sll", "srl", "sra"):
        for shape in ("i8", "i16"):
            idioms.append(
                _idiom(
                    op, shape,
                    f"    t: {shape} = {op}[3](a);\n"
                    f"    y: {shape} = add(t, b);",
                    f"a: {shape}, b: {shape}",
                )
            )
    idioms.append(
        Idiom(
            name="slice_i8",
            op="slice",
            shape="i4",
            source=(
                "def cell(a: i8, b: i4) -> (y: i4) {\n"
                "    t: i4 = slice[7, 4](a);\n"
                "    y: i4 = add(t, b);\n}"
            ),
            lane_width=4,
            is_vector=False,
        )
    )
    idioms.append(
        Idiom(
            name="cat_i4_i4",
            op="cat",
            shape="i8",
            source=(
                "def cell(a: i4, b: i4, c: i8) -> (y: i8) {\n"
                "    t: i8 = cat(a, b);\n"
                "    y: i8 = add(t, c);\n}"
            ),
            lane_width=8,
            is_vector=False,
        )
    )
    idioms.append(
        _idiom(
            "id", "i8",
            "    t: i8 = id(a);\n    y: i8 = add(t, b);",
            "a: i8, b: i8",
        )
    )
    idioms.append(
        _idiom(
            "const", "i8",
            "    t: i8 = const[42];\n    y: i8 = add(t, a);",
            "a: i8",
        )
    )
    return tuple(idioms)


_IDIOMS: Optional[Tuple[Idiom, ...]] = None


def frontend_idioms() -> Tuple[Idiom, ...]:
    """Every registered frontend idiom, in registry order."""
    global _IDIOMS
    if _IDIOMS is None:
        _IDIOMS = _build_idioms()
    return _IDIOMS


def covered_ops() -> "set[str]":
    """The operation names with at least one matrix row."""
    return {idiom.op for idiom in frontend_idioms()}


def uncovered_ops() -> List[str]:
    """Frontend operations with *no* matrix row — the ratchet.

    Derived from the op enums themselves, so a newly added
    :class:`~repro.ir.ops.CompOp` or :class:`~repro.ir.ops.WireOp`
    member without conformance rows shows up here (and fails the CI
    conformance step) the moment it lands.
    """
    every = {op.value for op in CompOp} | {op.value for op in WireOp}
    return sorted(every - covered_ops())


# -- expectations ----------------------------------------------------

#: The iCE40-class fabric has no datapaths above this lane width.
ICE40_MAX_WIDTH = 16


def expected_unsupported(target_name: str, idiom: Idiom) -> Optional[str]:
    """The documented reason ``idiom`` must *fail typed* on a target.

    Returns ``None`` when the cell is expected to compile and cosim.
    These rules are the machine-checked copy of each library's
    documented feature boundaries; a library change that widens or
    narrows support must update this table in the same commit, or the
    matrix fails with unexpected-ok / unexpected-unsupported cells.
    """
    if idiom.op == "mul" and idiom.is_vector:
        return "no registered target maps vector multiply"
    if target_name == "ice40":
        if idiom.lane_width > ICE40_MAX_WIDTH:
            return "no datapaths beyond i16 on the LUT4 fabric"
        if idiom.op == "ram" and (
            idiom.lane_width > 8 or idiom.addr_bits > 8
        ):
            return "EBR is byte-wide and at most 256 entries deep"
    if target_name == "ecp5" and idiom.op == "ram":
        return "no block RAM in the ECP5 library"
    return None


# -- running the matrix ----------------------------------------------


def _value(seed: int, width: int, is_bool: bool) -> int:
    """A deterministic, full-range stimulus value (no RNG, no hash)."""
    if is_bool:
        return (seed * 7 + 3) % 2
    span = 1 << width
    return ((seed * 2654435761 + 12345) % span) - (span >> 1)


def stimulus(func: Func, steps: int = TRACE_STEPS) -> Trace:
    """A deterministic input trace for ``func``.

    Enable-like boolean ports alternate (so stateful idioms both hold
    and update); integer ports sweep a multiplicative sequence that
    exercises sign boundaries at every width.
    """
    trace: Dict[str, List[object]] = {}
    for index, port in enumerate(func.inputs):
        values: List[object] = []
        for step in range(steps):
            seed = index * 97 + step * 31 + 1
            ty = port.ty
            if isinstance(ty, Bool):
                values.append(_value(seed, 1, True))
            elif isinstance(ty, Vec):
                values.append(
                    tuple(
                        _value(seed + lane * 13, ty.elem.width, False)
                        for lane in range(ty.length)
                    )
                )
            else:
                assert isinstance(ty, Int)
                values.append(_value(seed, ty.width, False))
        trace[port.name] = values
    return Trace(trace)


#: Cell outcomes.  The matrix passes iff every cell is OK or
#: UNSUPPORTED (typed failure that the expectation table predicts).
OK = "ok"
UNSUPPORTED = "unsupported"
MISMATCH = "mismatch"
UNEXPECTED_ERROR = "unexpected-error"
UNEXPECTED_OK = "unexpected-ok"
CRASH = "crash"

PASSING_OUTCOMES = (OK, UNSUPPORTED)


@dataclass(frozen=True)
class Cell:
    """One matrix cell: an idiom compiled+cosimed on one target."""

    target: str
    idiom: str
    outcome: str
    detail: str = ""

    @property
    def passing(self) -> bool:
        return self.outcome in PASSING_OUTCOMES


@dataclass
class ConformanceReport:
    """The full matrix plus the ratchet state."""

    targets: Tuple[str, ...]
    cells: List[Cell] = field(default_factory=list)

    def cell(self, target: str, idiom: str) -> Cell:
        for cell in self.cells:
            if cell.target == target and cell.idiom == idiom:
                return cell
        raise KeyError((target, idiom))

    @property
    def failing(self) -> List[Cell]:
        return [cell for cell in self.cells if not cell.passing]

    @property
    def passed(self) -> bool:
        return not self.failing and not uncovered_ops()

    def counts(self, target: str) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for cell in self.cells:
            if cell.target == target:
                counts[cell.outcome] = counts.get(cell.outcome, 0) + 1
        return counts

    def summary(self) -> str:
        """Per-target pass counts, one line per target (for CI logs)."""
        lines = []
        for target in self.targets:
            counts = self.counts(target)
            ok = counts.get(OK, 0)
            unsupported = counts.get(UNSUPPORTED, 0)
            failing = sum(
                count
                for outcome, count in counts.items()
                if outcome not in PASSING_OUTCOMES
            )
            lines.append(
                f"{target}: {ok} ok, {unsupported} expected-unsupported, "
                f"{failing} failing"
            )
        missing = uncovered_ops()
        if missing:
            lines.append(
                "ratchet: UNCOVERED frontend ops: " + ", ".join(missing)
            )
        else:
            lines.append(
                f"ratchet: all {len(covered_ops())} frontend ops covered"
            )
        return "\n".join(lines)

    def format_matrix(self) -> str:
        """The Table-1-style grid: idioms down, targets across."""
        symbols = {
            OK: "ok",
            UNSUPPORTED: "--",
            MISMATCH: "MISMATCH",
            UNEXPECTED_ERROR: "ERROR",
            UNEXPECTED_OK: "UNEXPECTED-OK",
            CRASH: "CRASH",
        }
        by_key = {(c.target, c.idiom): c for c in self.cells}
        idioms = [i.name for i in frontend_idioms()]
        width = max(len(name) for name in idioms) + 2
        columns = [max(len(t), 13) + 2 for t in self.targets]
        header = "idiom".ljust(width) + "".join(
            t.ljust(col) for t, col in zip(self.targets, columns)
        )
        lines = [header, "-" * len(header)]
        for idiom in idioms:
            row = idiom.ljust(width)
            for target, col in zip(self.targets, columns):
                cell = by_key.get((target, idiom))
                row += symbols.get(
                    cell.outcome if cell else "?", "?"
                ).ljust(col)
            lines.append(row.rstrip())
        return "\n".join(lines)


def _run_cell(
    compiler: ReticleCompiler, target_name: str, idiom: Idiom
) -> Cell:
    expect = expected_unsupported(target_name, idiom)
    func = idiom.func()
    try:
        result = compiler.compile(func)
    except ReticleError as err:
        if expect is not None:
            return Cell(target_name, idiom.name, UNSUPPORTED, expect)
        return Cell(
            target_name, idiom.name, UNEXPECTED_ERROR,
            f"{type(err).__name__}: {err}",
        )
    except Exception as err:  # noqa: BLE001 - untyped failures are cells
        return Cell(
            target_name, idiom.name, CRASH,
            f"{type(err).__name__}: {err}",
        )
    if expect is not None:
        return Cell(
            target_name, idiom.name, UNEXPECTED_OK,
            f"expected unsupported ({expect}) but compiled",
        )
    trace = stimulus(func)
    try:
        reference = Interpreter(func).run(trace)
        actual = AsmInterpreter(result.placed, compiler.target).run(trace)
    except Exception as err:  # noqa: BLE001
        return Cell(
            target_name, idiom.name, CRASH,
            f"cosim {type(err).__name__}: {err}",
        )
    if reference != actual:
        return Cell(
            target_name, idiom.name, MISMATCH,
            f"reference {reference.to_dict()} != "
            f"placed-asm {actual.to_dict()}",
        )
    return Cell(target_name, idiom.name, OK)


def run_conformance(
    targets: Optional[Sequence[str]] = None, jobs: int = 1
) -> ConformanceReport:
    """Compile and cosim every idiom on every target.

    Cells are independent, so with ``jobs > 1`` they fan out over a
    thread pool; the report's cell list is always in (target, idiom)
    registry order regardless of completion order.  ``jobs == 0``
    auto-sizes the pool (``RETICLE_JOBS`` env, else the CPU count) via
    :func:`repro.utils.pool.resolve_jobs`.
    """
    names = (
        registered_targets()
        if targets is None
        else tuple(targets)
    )
    compilers = {}
    for name in names:
        target, device = resolve_target(name)
        compilers[name] = ReticleCompiler(target=target, device=device)
    work = [
        (name, idiom) for name in names for idiom in frontend_idioms()
    ]
    if jobs == 0 or jobs is None:
        jobs = resolve_jobs(jobs, items=len(work))
    if jobs <= 1:
        cells = [
            _run_cell(compilers[name], name, idiom) for name, idiom in work
        ]
    else:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(_run_cell, compilers[name], name, idiom)
                for name, idiom in work
            ]
            cells = [future.result() for future in futures]
    return ConformanceReport(targets=tuple(names), cells=cells)
