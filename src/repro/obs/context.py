"""Request-scoped trace context.

A :class:`TraceContext` ties everything one service request produces —
spans, events, the flight-recorder entry, the JSON log line, the HTTP
response — to one **trace ID**.  The daemon mints one per request
(honoring a client-supplied ``X-Reticle-Trace-Id`` header), threads it
through :class:`~repro.serve.service.CompileService` into the
per-request :class:`~repro.obs.tracer.Tracer`, and echoes it back, so
a slow or failed compile seen by a client is greppable end-to-end in
the daemon's telemetry.

Trace IDs are opaque strings matched by :data:`TRACE_ID_PATTERN`
(letters, digits, ``_ . : -``; at most 128 chars) — permissive enough
to accept W3C-style hex ids and human-chosen names, strict enough to
be safe in headers, filenames, and log lines.  Batch items derive
their own IDs from the request's via :meth:`TraceContext.item`, so a
batch of N compiles stays one greppable family (``id``, ``id.1``,
``id.2``, ...).
"""

from __future__ import annotations

import re
import uuid
from dataclasses import dataclass, field
from typing import Dict, Optional

#: What a trace ID may look like (header-, filename-, and log-safe).
TRACE_ID_PATTERN = re.compile(r"^[A-Za-z0-9_.:-]{1,128}$")


def new_trace_id() -> str:
    """A fresh 16-hex-char trace ID (random, collision-negligible)."""
    return uuid.uuid4().hex[:16]


def valid_trace_id(text: object) -> bool:
    """Whether ``text`` is usable as a trace ID."""
    return isinstance(text, str) and bool(TRACE_ID_PATTERN.match(text))


@dataclass(frozen=True)
class TraceContext:
    """The request-scoped identity carried through one compile.

    ``queue_wait_s`` is how long the item sat between admission and a
    worker picking it up — the service records it so queue pressure is
    visible per request, not only as an aggregate.  ``metadata`` is
    free-form request context (program size, target, peer) that lands
    in the flight recorder and the JSON request log verbatim.
    """

    trace_id: str
    queue_wait_s: float = 0.0
    metadata: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def new(cls, trace_id: Optional[str] = None, **metadata: object) -> "TraceContext":
        """A context with the given ID, or a freshly minted one."""
        return cls(
            trace_id=trace_id if trace_id is not None else new_trace_id(),
            metadata=metadata,
        )

    def item(self, index: int) -> str:
        """The derived trace ID of batch item ``index`` (0 = the base)."""
        return self.trace_id if index == 0 else f"{self.trace_id}.{index}"
