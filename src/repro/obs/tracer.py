"""Span-based tracing with counters and gauges.

A :class:`Tracer` collects three kinds of telemetry:

* **Spans** — named, nested wall-clock intervals entered with
  ``with tracer.span("select"):``.  Each finished span records its
  name, start/end offsets (seconds since the tracer's epoch), nesting
  depth, parent span name, and thread id.
* **Counters** — monotonically accumulated integers
  (``tracer.count("isel.dp_hits", 3)``).
* **Gauges** — last-value-wins floats
  (``tracer.gauge("place.bbox_rows", 12)``).
* **Histograms** — value distributions
  (``tracer.observe("isel.matches_per_tree", 26)``), summarized as
  count/p50/p95 by :func:`~repro.obs.export.format_profile`.
* **Events** — structured diagnostics
  (``tracer.event(Severity.INFO, "cascade", "chain rewritten", ...)``),
  collected in an :class:`~repro.obs.events.EventLog`.

A span that unwinds with an exception is recorded with
``error=True``, so failed compiles stay visible in traces.

All mutation is guarded by a lock so one tracer can be shared across
threads; the span *stack* is thread-local, so concurrent threads nest
independently.

When no observation is wanted, :data:`NULL_TRACER` (an instance of
:class:`NullTracer`) provides the same API as pure no-ops, so
instrumented code never branches on "is tracing enabled".
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from repro.obs.events import Event, EventLog, Severity
from repro.obs.reservoir import Reservoir


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    ``start``/``end`` are seconds since the tracer's epoch (the
    moment the tracer was created), so records from one tracer are
    directly comparable.  ``error`` marks a span whose body unwound
    with an exception.  ``trace_id`` is the request identity of the
    tracer that recorded the span (None outside a request scope); it
    survives :meth:`Tracer.merge`, so a span in a long-lived service
    tracer still names the request that produced it.
    """

    name: str
    start: float
    end: float
    depth: int
    parent: Optional[str]
    thread_id: int
    error: bool = False
    trace_id: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        """A JSON-able rendering (flight recorder, debug dumps)."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "seconds": self.seconds,
            "depth": self.depth,
            "parent": self.parent,
            "thread_id": self.thread_id,
            "error": self.error,
            "trace_id": self.trace_id,
        }

    @property
    def seconds(self) -> float:
        return self.end - self.start


class Span:
    """Context manager handle for one in-flight span.

    After exit, :attr:`record` holds the finished :class:`SpanRecord`
    and :attr:`seconds` its duration, so callers that need the elapsed
    time of a specific ``with`` block read it off the handle.
    """

    __slots__ = ("_tracer", "name", "_start", "_depth", "_parent", "record")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self.record: Optional[SpanRecord] = None

    @property
    def seconds(self) -> float:
        return self.record.seconds if self.record is not None else 0.0

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        self._depth = len(stack)
        self._parent = stack[-1].name if stack else None
        stack.append(self)
        self._start = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = self._tracer._clock()
        self._tracer._stack().pop()
        self.record = SpanRecord(
            name=self.name,
            start=self._start - self._tracer._epoch,
            end=end - self._tracer._epoch,
            depth=self._depth,
            parent=self._parent,
            thread_id=threading.get_ident(),
            error=exc_type is not None,
            trace_id=self._tracer.trace_id,
        )
        self._tracer._record(self.record)


class Tracer:
    """Thread-safe, in-memory span/counter/gauge collector."""

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        trace_id: Optional[str] = None,
    ) -> None:
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._spans: List[SpanRecord] = []
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._hists: Dict[str, Reservoir] = {}
        self.events = EventLog()
        self._local = threading.local()
        #: Request identity stamped onto every span and event this
        #: tracer records (None outside a request scope).  Set by the
        #: compile service per request; see repro.obs.context.
        self.trace_id = trace_id

    # -- recording ---------------------------------------------------

    def span(self, name: str) -> Span:
        """A context manager timing one named phase (nestable)."""
        return Span(self, name)

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name`` (creating it at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Add one sample to the histogram ``name``.

        Storage is a bounded :class:`~repro.obs.reservoir.Reservoir`:
        exact below its capacity, a deterministic stride sample above
        it — a week-long daemon does not grow per observation.
        """
        with self._lock:
            reservoir = self._hists.get(name)
            if reservoir is None:
                reservoir = self._hists[name] = Reservoir()
            reservoir.observe(value)

    def event(
        self,
        severity: Severity,
        stage: str,
        message: str,
        provenance: Optional[str] = None,
        **attrs: object,
    ) -> Event:
        """Record one structured diagnostic event."""
        record = Event(
            severity=severity,
            stage=stage,
            message=message,
            provenance=provenance,
            attrs=attrs,
            time=self._clock() - self._epoch,
            trace_id=self.trace_id,
        )
        self.events.append(record)
        return record

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._spans.append(record)

    # -- pickling ----------------------------------------------------
    #
    # A tracer crosses the process boundary when a compile worker
    # ships its telemetry back to the parent (repro.serve.procpool).
    # The lock and the per-thread span stack are process-local and
    # must not travel; everything else — spans, counters, gauges,
    # reservoirs, events, epoch — is plain data.  Epochs come from
    # CLOCK_MONOTONIC, which is system-wide on Linux, so the parent's
    # ``merge`` rebases a worker tracer exactly as it does a thread's.

    def __getstate__(self) -> Dict[str, object]:
        with self._lock:
            state = dict(self.__dict__)
        del state["_lock"]
        del state["_local"]
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._local = threading.local()

    def merge(self, other: "Tracer") -> None:
        """Fold another tracer's telemetry into this one.

        Spans are rebased from the other tracer's epoch onto this
        one's (both epochs come from the same monotonic clock), so a
        merged timeline stays coherent; counters accumulate; gauges
        take the other tracer's value (last write wins, as everywhere
        else); histogram samples concatenate; events are rebased and
        appended.  Only *finished* spans move — a span still open in
        the other tracer has no record yet and is simply absent from
        the merge.  Used by parallel ``compile_prog``: each worker
        records into a private tracer, then merges into the shared one.
        """
        offset = other._epoch - self._epoch
        spans = other.spans
        counters = other.counters
        gauges = other.gauges
        reservoirs = other.reservoirs
        events = other.events.events
        with self._lock:
            for record in spans:
                self._spans.append(
                    replace(
                        record,
                        start=record.start + offset,
                        end=record.end + offset,
                    )
                )
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            self._gauges.update(gauges)
            for name, reservoir in reservoirs.items():
                mine = self._hists.get(name)
                if mine is None:
                    self._hists[name] = reservoir
                else:
                    mine.merge(reservoir)
        self.events.extend(
            [replace(event, time=event.time + offset) for event in events]
        )

    # -- reading -----------------------------------------------------

    @property
    def spans(self) -> List[SpanRecord]:
        """All finished spans, in start order."""
        with self._lock:
            return sorted(self._spans, key=lambda s: (s.start, -s.end))

    @property
    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    @property
    def histograms(self) -> Dict[str, List[float]]:
        """Retained samples per histogram name.

        Exact below the reservoir capacity; a deterministic sample
        above it (see :class:`~repro.obs.reservoir.Reservoir`).
        """
        with self._lock:
            return {
                name: list(reservoir.samples)
                for name, reservoir in self._hists.items()
            }

    @property
    def reservoirs(self) -> Dict[str, Reservoir]:
        """Deep-copied reservoir per histogram (merge/exposition food)."""
        with self._lock:
            return {
                name: reservoir.clone()
                for name, reservoir in self._hists.items()
            }

    def hist_stats(self) -> Dict[str, Dict[str, object]]:
        """Exact count/sum/min/max/buckets per histogram name."""
        with self._lock:
            return {
                name: reservoir.stats()
                for name, reservoir in self._hists.items()
            }

    def durations(self, depth: Optional[int] = None) -> Dict[str, float]:
        """Total seconds per span name, in first-start order.

        ``depth`` restricts the aggregation to spans at one nesting
        level (0 = roots, 1 = direct children of a root, ...).
        """
        totals: Dict[str, float] = {}
        for record in self.spans:
            if depth is not None and record.depth != depth:
                continue
            totals[record.name] = totals.get(record.name, 0.0) + record.seconds
        return totals

    def stage_seconds(self) -> Dict[str, float]:
        """Per-stage totals: the direct children of the root span.

        Falls back to the root spans themselves when nothing nested
        (a tracer used without an enclosing root span).
        """
        stages = self.durations(depth=1)
        return stages if stages else self.durations(depth=0)


class _NullSpan:
    """The reusable no-op span; entering and exiting cost two calls."""

    __slots__ = ()

    seconds = 0.0
    record = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """A do-nothing tracer with the full :class:`Tracer` API.

    Instrumented code takes this as its default so the uninstrumented
    path stays allocation-free and branch-free.
    """

    __slots__ = ()

    trace_id: Optional[str] = None

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, value: int = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def event(
        self,
        severity: Severity,
        stage: str,
        message: str,
        provenance: Optional[str] = None,
        **attrs: object,
    ) -> None:
        return None

    def merge(self, other) -> None:
        return None

    @property
    def spans(self) -> List[SpanRecord]:
        return []

    @property
    def counters(self) -> Dict[str, int]:
        return {}

    @property
    def gauges(self) -> Dict[str, float]:
        return {}

    @property
    def histograms(self) -> Dict[str, List[float]]:
        return {}

    @property
    def reservoirs(self) -> Dict[str, Reservoir]:
        return {}

    def hist_stats(self) -> Dict[str, Dict[str, object]]:
        return {}

    @property
    def events(self) -> EventLog:
        return EventLog()

    def durations(self, depth: Optional[int] = None) -> Dict[str, float]:
        return {}

    def stage_seconds(self) -> Dict[str, float]:
        return {}


NULL_TRACER = NullTracer()
