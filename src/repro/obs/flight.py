"""The flight recorder: post-hoc forensics for a long-lived daemon.

Aggregate metrics say *that* something was slow; the flight recorder
says *why*, after the fact, without keeping every request's full
telemetry alive.  It is a bounded in-memory store retaining the
complete per-request record — merged spans, event log, counters,
gauges, request metadata — for exactly two populations:

* the **K slowest successful** requests (a min-heap on duration: a
  new record evicts the *fastest* retained one once the buffer is
  full, so the retained set is always the current top-K), and
* the **most recent failed** requests (a ring: failures are pinned —
  they never compete with slow requests for space — and only roll off
  when more than ``keep_failed`` newer failures arrive).

``GET /debug/flightrecorder`` and ``reticle flightrecorder <addr>``
dump the whole thing as JSON; a forced-slow or failed compile is
recoverable in full long after its response was sent.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class FlightRecord:
    """Everything retained about one request.

    ``spans``/``events`` are the JSON-able dumps of the request's
    private tracer (every entry carries the request's trace ID);
    ``counters``/``gauges`` are that tracer's final values — the
    request's own cache hits and solver work, not the service
    aggregates.  ``wall_time`` is a wall-clock (epoch) timestamp so
    dumps line up with external logs.
    """

    trace_id: str
    ok: bool
    seconds: float
    queue_wait_s: float = 0.0
    cached: bool = False
    error: Optional[str] = None
    target: str = ""
    functions: List[str] = field(default_factory=list)
    stages: Dict[str, float] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)
    spans: List[Dict[str, object]] = field(default_factory=list)
    events: List[Dict[str, object]] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    wall_time: float = field(default_factory=time.time)

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "ok": self.ok,
            "seconds": self.seconds,
            "queue_wait_s": self.queue_wait_s,
            "cached": self.cached,
            "error": self.error,
            "target": self.target,
            "functions": list(self.functions),
            "stages": dict(self.stages),
            "metadata": dict(self.metadata),
            "spans": list(self.spans),
            "events": list(self.events),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "wall_time": self.wall_time,
        }


class FlightRecorder:
    """Bounded retention of the K slowest and the recent failed requests.

    Thread-safe; every mutation happens under one lock (records are
    built outside it).  Memory is bounded by ``keep_slowest +
    keep_failed`` full records regardless of daemon uptime.
    """

    def __init__(self, keep_slowest: int = 16, keep_failed: int = 32) -> None:
        if keep_slowest < 0 or keep_failed < 0:
            raise ValueError("flight recorder capacities must be >= 0")
        self.keep_slowest = keep_slowest
        self.keep_failed = keep_failed
        self._lock = threading.Lock()
        #: Min-heap of (seconds, sequence, record): the root is the
        #: fastest retained record, i.e. the next eviction victim.
        self._slowest: List[tuple] = []
        self._failed: List[FlightRecord] = []
        self._sequence = 0
        self._recorded = 0
        self._evicted = 0

    def record(self, record: FlightRecord) -> None:
        """Retain (or discard) one finished request's record."""
        with self._lock:
            self._recorded += 1
            if not record.ok:
                self._failed.append(record)
                if len(self._failed) > self.keep_failed:
                    self._failed.pop(0)
                    self._evicted += 1
                return
            if self.keep_slowest == 0:
                self._evicted += 1
                return
            self._sequence += 1
            entry = (record.seconds, self._sequence, record)
            if len(self._slowest) < self.keep_slowest:
                heapq.heappush(self._slowest, entry)
            elif record.seconds > self._slowest[0][0]:
                heapq.heappushpop(self._slowest, entry)
                self._evicted += 1
            else:
                self._evicted += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._slowest) + len(self._failed)

    @property
    def recorded(self) -> int:
        with self._lock:
            return self._recorded

    def slowest(self) -> List[FlightRecord]:
        """Retained successful records, slowest first."""
        with self._lock:
            entries = sorted(self._slowest, key=lambda e: (-e[0], e[1]))
        return [record for _, _, record in entries]

    def failed(self) -> List[FlightRecord]:
        """Retained failed records, oldest first."""
        with self._lock:
            return list(self._failed)

    def find(self, trace_id: str) -> Optional[FlightRecord]:
        """The retained record with this trace ID, if still held."""
        for record in self.failed() + self.slowest():
            if record.trace_id == trace_id:
                return record
        return None

    def dump(self) -> Dict[str, object]:
        """The JSON payload of ``GET /debug/flightrecorder``."""
        with self._lock:
            recorded, evicted = self._recorded, self._evicted
        return {
            "config": {
                "keep_slowest": self.keep_slowest,
                "keep_failed": self.keep_failed,
            },
            "recorded": recorded,
            "evicted": evicted,
            "slowest": [record.to_dict() for record in self.slowest()],
            "failed": [record.to_dict() for record in self.failed()],
        }
