"""Prometheus text exposition: rendering and parsing.

:func:`render_prometheus` turns one tracer's counters, gauges, and
histograms (plus caller-supplied process gauges) into the Prometheus
text exposition format (version 0.0.4) served by the daemon's
``GET /metrics``.  Dotted metric names are sanitized to the
Prometheus charset (``service.latency_s`` → ``service_latency_s``),
with the original spelling preserved in the ``# HELP`` line.
Histograms render the standard triple: cumulative fixed-bucket
``_bucket{le="..."}`` lines (ending at ``le="+Inf"``), an exact
``_sum``, and an exact ``_count`` — the reservoir keeps those
aggregates exact even after sampling kicks in.

:func:`parse_prometheus` is the matching reader: it parses an
exposition back into :class:`MetricFamily` objects.  It exists so the
repo can *consume* its own metrics — ``reticle top`` polls and parses
``/metrics``, the loadgen verifies the daemon's request counter
against ground truth, and the round-trip is pinned in tests — without
growing a dependency on a Prometheus client library.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ReticleError

#: Prometheus metric-name charset; anything else becomes ``_``.
_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: One sample line: ``name{labels} value`` with optional labels.
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)

_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def sanitize_metric_name(name: str) -> str:
    """A Prometheus-legal metric name for a dotted internal one."""
    clean = _NAME_OK.sub("_", name)
    if not clean or not re.match(r"[a-zA-Z_:]", clean[0]):
        clean = "_" + clean
    return clean


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


@dataclass
class Sample:
    """One exposition line: a metric name, its labels, its value."""

    name: str
    labels: Dict[str, str]
    value: float


@dataclass
class MetricFamily:
    """One ``# TYPE`` group of an exposition."""

    name: str
    type: str
    help: str = ""
    samples: List[Sample] = field(default_factory=list)

    def value(self) -> float:
        """The value of a single-sample (counter/gauge) family."""
        if not self.samples:
            return 0.0
        return self.samples[0].value

    def sample(self, suffix: str = "", **labels: str) -> Optional[Sample]:
        """The first sample matching ``name+suffix`` and the labels."""
        wanted = self.name + suffix
        for sample in self.samples:
            if sample.name != wanted:
                continue
            if all(sample.labels.get(k) == v for k, v in labels.items()):
                return sample
        return None

    def buckets(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs of a histogram family."""
        out: List[Tuple[float, int]] = []
        for sample in self.samples:
            if not sample.name.endswith("_bucket"):
                continue
            bound_text = sample.labels.get("le", "")
            bound = math.inf if bound_text == "+Inf" else float(bound_text)
            out.append((bound, int(sample.value)))
        return out


def render_prometheus(
    tracer,
    extra_gauges: Optional[Dict[str, float]] = None,
) -> str:
    """The tracer's telemetry as Prometheus text exposition.

    ``extra_gauges`` carries point-in-time process state the tracer
    does not own (uptime, RSS, queue depth, cache disk bytes); they
    render as gauges alongside the tracer's own.
    """
    lines: List[str] = []

    def emit(kind: str, raw_name: str, body: List[str]) -> None:
        name = sanitize_metric_name(raw_name)
        lines.append(f"# HELP {name} {raw_name} ({kind})")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(body)

    for raw_name, value in sorted(tracer.counters.items()):
        name = sanitize_metric_name(raw_name)
        emit("counter", raw_name, [f"{name} {_format_value(value)}"])

    gauges = dict(tracer.gauges)
    if extra_gauges:
        gauges.update(extra_gauges)
    for raw_name, value in sorted(gauges.items()):
        name = sanitize_metric_name(raw_name)
        emit("gauge", raw_name, [f"{name} {_format_value(value)}"])

    for raw_name, stats in sorted(tracer.hist_stats().items()):
        name = sanitize_metric_name(raw_name)
        body: List[str] = []
        for bound, cumulative in stats["buckets"]:
            le = "+Inf" if bound == math.inf else _format_value(bound)
            body.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
        body.append(f"{name}_sum {_format_value(stats['sum'])}")
        body.append(f"{name}_count {stats['count']}")
        emit("histogram", raw_name, body)

    return "\n".join(lines) + "\n" if lines else ""


def _parse_labels(text: Optional[str]) -> Dict[str, str]:
    if not text:
        return {}
    labels: Dict[str, str] = {}
    for name, value in _LABEL.findall(text):
        labels[name] = value.replace('\\"', '"').replace("\\\\", "\\")
    return labels


def parse_prometheus(text: str) -> Dict[str, MetricFamily]:
    """Parse a text exposition into families keyed by metric name.

    Accepts what :func:`render_prometheus` emits plus the common
    Prometheus liberties (untyped samples get an implicit ``untyped``
    family; HELP/TYPE in either order).  Raises
    :class:`~repro.errors.ReticleError` on a line that is neither a
    comment, blank, nor a well-formed sample — a scrape that half
    parses is worse than one that fails loudly.
    """
    families: Dict[str, MetricFamily] = {}

    def family_for(sample_name: str) -> MetricFamily:
        # _bucket/_sum/_count samples belong to their histogram family.
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                if base in families and families[base].type == "histogram":
                    return families[base]
        if sample_name not in families:
            families[sample_name] = MetricFamily(
                name=sample_name, type="untyped"
            )
        return families[sample_name]

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                raise ReticleError(f"malformed HELP on line {line_no}")
            name = parts[2]
            family = families.setdefault(
                name, MetricFamily(name=name, type="untyped")
            )
            family.help = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ReticleError(f"malformed TYPE on line {line_no}")
            name, kind = parts[2], parts[3]
            family = families.setdefault(
                name, MetricFamily(name=name, type=kind)
            )
            family.type = kind
            continue
        if line.startswith("#"):
            continue  # plain comment
        match = _SAMPLE.match(line)
        if match is None:
            raise ReticleError(
                f"unparseable exposition line {line_no}: {raw_line!r}"
            )
        value_text = match.group("value")
        try:
            value = (
                math.inf
                if value_text == "+Inf"
                else -math.inf
                if value_text == "-Inf"
                else float(value_text)
            )
        except ValueError as error:
            raise ReticleError(
                f"bad sample value on line {line_no}: {value_text!r}"
            ) from error
        family = family_for(match.group("name"))
        family.samples.append(
            Sample(
                name=match.group("name"),
                labels=_parse_labels(match.group("labels")),
                value=value,
            )
        )
    return families
