"""Named metric handles bound to a tracer.

:class:`Counter` and :class:`Gauge` are thin conveniences over
``tracer.count``/``tracer.gauge`` for code that updates the same
metric many times: create the handle once, update it in the loop.
Bound to :data:`~repro.obs.tracer.NULL_TRACER` they are no-ops.
"""

from __future__ import annotations

from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

TracerLike = "Tracer | NullTracer"


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("_tracer", "name")

    def __init__(self, tracer, name: str) -> None:
        self._tracer = tracer
        self.name = name

    def inc(self, value: int = 1) -> None:
        self._tracer.count(self.name, value)

    @property
    def value(self) -> int:
        return self._tracer.counters.get(self.name, 0)


class Gauge:
    """A last-value-wins float metric."""

    __slots__ = ("_tracer", "name")

    def __init__(self, tracer, name: str) -> None:
        self._tracer = tracer
        self.name = name

    def set(self, value: float) -> None:
        self._tracer.gauge(self.name, value)

    @property
    def value(self) -> float:
        return self._tracer.gauges.get(self.name, 0.0)
