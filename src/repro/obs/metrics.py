"""Named metric handles bound to a tracer.

:class:`Counter`, :class:`Gauge`, and :class:`Histogram` are thin
conveniences over ``tracer.count``/``tracer.gauge``/``tracer.observe``
for code that updates the same metric many times: create the handle
once, update it in the loop.  Bound to
:data:`~repro.obs.tracer.NULL_TRACER` they are no-ops.

Histograms are for quantities whose *distribution* matters — placement
backtracks per solver probe, isel match attempts per tree — where a
single counter would hide the long tail.  :func:`percentile` is the
shared nearest-rank estimator used by ``format_profile`` (p50/p95)
and the compile report.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import List, Sequence

from repro.obs.reservoir import (  # noqa: F401 - canonical re-export
    DEFAULT_BUCKETS,
    DEFAULT_RESERVOIR_CAPACITY,
    Reservoir,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

TracerLike = "Tracer | NullTracer"


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (nearest-rank) of ``values``.

    Returns 0.0 for an empty sample set; ``p`` is in [0, 100].
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if p <= 0:
        return ordered[0]
    rank = min(len(ordered), max(1, math.ceil(len(ordered) * p / 100)))
    return ordered[rank - 1]


def summarize(values: Sequence[float]) -> dict:
    """count/min/max/p50/p95 of one histogram's samples.

    The uniform shape used wherever a latency distribution crosses a
    serialization boundary (the compile daemon's ``/stats`` endpoint,
    the loadgen report, ``BENCH_service.json`` rows).
    """
    return {
        "count": len(values),
        "min": min(values) if values else 0.0,
        "max": max(values) if values else 0.0,
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
    }


class RollingWindow:
    """Outcome/latency memory of the last ``size`` requests.

    Backs the SLO gauges on ``/metrics``: error rate and p50/p95
    latency over a recent window, which track incidents where the
    since-boot aggregates of a long-lived daemon barely move.
    Thread-safe (one lock; the window is tiny).
    """

    def __init__(self, size: int = 256) -> None:
        if size < 1:
            raise ValueError("window size must be at least 1")
        self.size = size
        self._lock = threading.Lock()
        self._outcomes: deque = deque(maxlen=size)

    def record(self, ok: bool, seconds: float) -> None:
        with self._lock:
            self._outcomes.append((bool(ok), float(seconds)))

    def __len__(self) -> int:
        with self._lock:
            return len(self._outcomes)

    def error_rate(self) -> float:
        with self._lock:
            outcomes = list(self._outcomes)
        if not outcomes:
            return 0.0
        return sum(1 for ok, _ in outcomes if not ok) / len(outcomes)

    def latency_percentile(self, p: float) -> float:
        with self._lock:
            latencies = [seconds for _, seconds in self._outcomes]
        return percentile(latencies, p)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("_tracer", "name")

    def __init__(self, tracer, name: str) -> None:
        self._tracer = tracer
        self.name = name

    def inc(self, value: int = 1) -> None:
        self._tracer.count(self.name, value)

    @property
    def value(self) -> int:
        return self._tracer.counters.get(self.name, 0)


class Gauge:
    """A last-value-wins float metric."""

    __slots__ = ("_tracer", "name")

    def __init__(self, tracer, name: str) -> None:
        self._tracer = tracer
        self.name = name

    def set(self, value: float) -> None:
        self._tracer.gauge(self.name, value)

    @property
    def value(self) -> float:
        return self._tracer.gauges.get(self.name, 0.0)


class Histogram:
    """A sample-distribution metric (p50/p95 in profiles)."""

    __slots__ = ("_tracer", "name")

    def __init__(self, tracer, name: str) -> None:
        self._tracer = tracer
        self.name = name

    def observe(self, value: float) -> None:
        self._tracer.observe(self.name, value)

    @property
    def values(self) -> List[float]:
        return self._tracer.histograms.get(self.name, [])

    @property
    def count(self) -> int:
        """Total observations (exact even after reservoir sampling)."""
        stats = self._tracer.hist_stats().get(self.name)
        return int(stats["count"]) if stats else len(self.values)

    def percentile(self, p: float) -> float:
        return percentile(self.values, p)

    def summary(self) -> dict:
        """count/min/max/p50/p95 of the samples (see :func:`summarize`)."""
        return summarize(self.values)
