"""Observability for the Reticle pipeline: spans, counters, gauges.

The paper's evaluation (Figures 13/14) is about *where* compile time
and resources go; this package is the measurement substrate.  It is
zero-dependency and in-memory: a :class:`Tracer` records nested phase
timers (spans), monotonic counters, and last-value gauges, and exports
them as a Chrome ``trace_event`` JSON file or a text table.

Tracing a region::

    from repro.obs import Tracer

    tracer = Tracer()
    with tracer.span("compile"):
        with tracer.span("select"):
            ...
            tracer.count("isel.trees", len(trees))
        with tracer.span("place"):
            ...
            tracer.gauge("place.bbox_rows", extent)

    tracer.stage_seconds()   # {"select": 0.0012, "place": 0.0304}
    tracer.counters          # {"isel.trees": 7}

Exporting::

    from repro.obs import chrome_trace_json, format_profile

    print(format_profile(tracer))          # human-readable table
    open("trace.json", "w").write(chrome_trace_json(tracer))

The whole pipeline is instrumented against this API
(``ReticleCompiler.compile`` opens the root span; the selector,
placer, and code generator record their own counters), and every
instrumented entry point defaults to :data:`NULL_TRACER` — a no-op
:class:`NullTracer` whose ``span``/``count``/``gauge`` cost one cheap
method call — so uninstrumented callers pay effectively nothing.

Repeated updates to one metric can go through the bound handles
:class:`Counter`/:class:`Gauge` (see :mod:`repro.obs.metrics`); hot
loops should accumulate a local int and record it once per stage.
"""

from repro.obs.context import (
    TraceContext,
    new_trace_id,
    valid_trace_id,
)
from repro.obs.events import Event, EventLog, Severity, format_events
from repro.obs.expo import (
    MetricFamily,
    parse_prometheus,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    format_profile,
    write_chrome_trace,
)
from repro.obs.flight import FlightRecord, FlightRecorder
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Reservoir,
    RollingWindow,
    percentile,
    summarize,
)
from repro.obs.provenance import Lineage, LineageRow, MatchRecord
from repro.obs.report import CompileReport, build_report, format_report
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "SpanRecord",
    "Counter",
    "Gauge",
    "Histogram",
    "Reservoir",
    "RollingWindow",
    "percentile",
    "summarize",
    "TraceContext",
    "new_trace_id",
    "valid_trace_id",
    "MetricFamily",
    "parse_prometheus",
    "render_prometheus",
    "sanitize_metric_name",
    "FlightRecord",
    "FlightRecorder",
    "Event",
    "EventLog",
    "Severity",
    "format_events",
    "Lineage",
    "LineageRow",
    "MatchRecord",
    "CompileReport",
    "build_report",
    "format_report",
    "chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "format_profile",
]
