"""Bounded histogram storage (the reservoir behind every tracer).

Separated from :mod:`repro.obs.metrics` so :mod:`repro.obs.tracer`
can use it without an import cycle (metrics imports tracer for the
bound handles).  See :class:`Reservoir` for the sampling scheme.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence, Tuple

#: Exact-storage threshold for :class:`Reservoir`: below this many
#: samples every value is kept verbatim (p50/p95 are exact, matching
#: the pre-reservoir behaviour bit for bit); above it the reservoir
#: degrades to a deterministic stride sample of bounded size.
DEFAULT_RESERVOIR_CAPACITY = 4096

#: Fixed histogram bucket upper bounds, shared by every reservoir and
#: by the Prometheus ``_bucket`` exposition.  The low end covers
#: request/stage latencies in seconds; the high end covers work-count
#: histograms (solver backtracks, isel matches per tree).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 100.0, 1000.0, 10000.0,
)


class Reservoir:
    """Bounded histogram storage with exact aggregates.

    Below ``capacity`` observations, every sample is stored verbatim —
    percentile queries are exact and existing p50/p95 expectations are
    untouched.  Beyond that, the sample list is compacted to every
    other element and the acceptance stride doubles (index-stride
    sampling: sample ``i`` is kept iff ``i % stride == 0``), so a
    week-long daemon holds at most ``capacity`` floats per histogram
    no matter how many requests it serves.  The scheme is
    deterministic and seedless: the same observation sequence always
    retains the same samples.

    ``count``/``total``/``minimum``/``maximum`` and the fixed-bucket
    counts are maintained exactly at observe time regardless of
    sampling — the Prometheus ``_count``/``_sum``/``_bucket`` lines
    never lie, only the percentile estimate degrades (to a systematic
    sample, which for the arrival-order-independent latency streams
    here is as good as uniform).

    Not thread-safe on its own; the owning tracer serializes access.
    """

    __slots__ = (
        "capacity",
        "buckets",
        "samples",
        "count",
        "total",
        "minimum",
        "maximum",
        "bucket_counts",
        "_stride",
    )

    def __init__(
        self,
        capacity: int = DEFAULT_RESERVOIR_CAPACITY,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if capacity < 2:
            raise ValueError("reservoir capacity must be at least 2")
        self.capacity = capacity
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.samples: List[float] = []
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        #: Per-bucket (non-cumulative) counts; the overflow bucket is
        #: implicit (count minus the sum of these).
        self.bucket_counts: List[int] = [0] * len(self.buckets)
        self._stride = 1

    def observe(self, value: float) -> None:
        value = float(value)
        index = self.count
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        slot = bisect.bisect_left(self.buckets, value)
        if slot < len(self.bucket_counts):
            self.bucket_counts[slot] += 1
        if index % self._stride == 0:
            self.samples.append(value)
            if len(self.samples) > self.capacity:
                self.samples = self.samples[::2]
                self._stride *= 2

    def merge(self, other: "Reservoir") -> None:
        """Fold another reservoir in (aggregates exact, samples pooled)."""
        self.count += other.count
        self.total += other.total
        for bound in (other.minimum, other.maximum):
            if bound is None:
                continue
            if self.minimum is None or bound < self.minimum:
                self.minimum = bound
            if self.maximum is None or bound > self.maximum:
                self.maximum = bound
        if other.buckets == self.buckets:
            for i, n in enumerate(other.bucket_counts):
                self.bucket_counts[i] += n
        else:  # re-bucket the other side's samples as an approximation
            for value in other.samples:
                slot = bisect.bisect_left(self.buckets, value)
                if slot < len(self.bucket_counts):
                    self.bucket_counts[slot] += 1
        self.samples.extend(other.samples)
        while len(self.samples) > self.capacity:
            self.samples = self.samples[::2]
            self._stride *= 2

    def clone(self) -> "Reservoir":
        copy = Reservoir(capacity=self.capacity, buckets=self.buckets)
        copy.samples = list(self.samples)
        copy.count = self.count
        copy.total = self.total
        copy.minimum = self.minimum
        copy.maximum = self.maximum
        copy.bucket_counts = list(self.bucket_counts)
        copy._stride = self._stride
        return copy

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending at (inf, count)."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, self.count))
        return out

    def stats(self) -> Dict[str, object]:
        """The exact aggregates (used by the exposition renderer)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.minimum is not None else 0.0,
            "max": self.maximum if self.maximum is not None else 0.0,
            "buckets": self.cumulative_buckets(),
        }
