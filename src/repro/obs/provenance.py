"""End-to-end provenance: IR instruction -> emitted Verilog cells.

The provenance id of a value is its SSA name (``dst``) — unique within
a function and stable across the whole pipeline, because every stage
keys its rewrite on it: instruction selection emits one assembly
instruction per *match root* and records which IR instructions the
match swallowed; cascading renames an instruction's op but keeps its
``dst``; placement resolves its location; codegen attributes every
cell it stamps to the assembly instruction being synthesized.

Each stage reports into one :class:`Lineage` (side-channel — artifacts
themselves are untouched, so provenance cannot perturb the emitted
Verilog).  :meth:`Lineage.rows` joins the four stage tables into the
per-IR-instruction lineage table of ``reticle report``: every compute
IR instruction maps to exactly one assembly instruction, its match
cost, its placed ``(prim, x, y)``, and the Verilog cells it became.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class MatchRecord:
    """One chosen isel match: the IR instructions one ASM instr covers.

    ``cost`` is the match's own weighted area (the pattern's area times
    its primitive weight — subtree costs are accounted to the subtree
    roots' own matches).
    """

    asm_dst: str
    asm_op: str
    prim: str
    cost: float
    tree: int
    ir_dsts: Tuple[str, ...]
    ir_ops: Tuple[str, ...]


@dataclass(frozen=True)
class LineageRow:
    """One IR compute instruction's full journey through the pipeline."""

    ir_dst: str
    ir_op: str
    asm_dst: str
    asm_op: str
    match_cost: float
    tree: int
    prim: Optional[str] = None
    x: Optional[int] = None
    y: Optional[int] = None
    cells: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "ir_dst": self.ir_dst,
            "ir_op": self.ir_op,
            "asm_dst": self.asm_dst,
            "asm_op": self.asm_op,
            "match_cost": self.match_cost,
            "tree": self.tree,
            "prim": self.prim,
            "x": self.x,
            "y": self.y,
            "cells": list(self.cells),
        }


class Lineage:
    """Per-compile provenance collector, filled stage by stage.

    Thread-safe so one lineage could aggregate concurrent work, though
    the compiler builds one per compiled function.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._matches: List[MatchRecord] = []
        # asm dst -> cascade variant op it was rewritten to
        self._rewrites: Dict[str, str] = {}
        # asm dst -> (prim, x, y)
        self._placements: Dict[str, Tuple[str, int, int]] = {}
        # asm dst -> emitted cell names
        self._cells: Dict[str, Tuple[str, ...]] = {}

    # Lineages ride inside pickled compile-cache entries; the lock is
    # recreated on load.
    def __getstate__(self) -> Dict[str, object]:
        with self._lock:
            state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- stage recorders ---------------------------------------------

    def record_match(
        self,
        asm_dst: str,
        asm_op: str,
        prim: str,
        cost: float,
        tree: int,
        ir_dsts: Tuple[str, ...],
        ir_ops: Tuple[str, ...],
    ) -> None:
        """Selection chose a pattern rooted at ``asm_dst``."""
        with self._lock:
            self._matches.append(
                MatchRecord(
                    asm_dst=asm_dst,
                    asm_op=asm_op,
                    prim=prim,
                    cost=cost,
                    tree=tree,
                    ir_dsts=ir_dsts,
                    ir_ops=ir_ops,
                )
            )

    def record_rewrite(self, asm_dst: str, new_op: str) -> None:
        """Cascading renamed ``asm_dst``'s op to a cascade variant."""
        with self._lock:
            self._rewrites[asm_dst] = new_op

    def record_placement(
        self, asm_dst: str, prim: str, x: int, y: int
    ) -> None:
        """Placement resolved ``asm_dst`` to ``(prim, x, y)``."""
        with self._lock:
            self._placements[asm_dst] = (prim, x, y)

    def record_cells(self, asm_dst: str, cells: Tuple[str, ...]) -> None:
        """Codegen synthesized ``asm_dst`` into these netlist cells."""
        if not cells:
            return
        with self._lock:
            existing = self._cells.get(asm_dst, ())
            self._cells[asm_dst] = existing + tuple(cells)

    # -- reading ------------------------------------------------------

    @property
    def matches(self) -> List[MatchRecord]:
        with self._lock:
            return list(self._matches)

    @property
    def placements(self) -> Dict[str, Tuple[str, int, int]]:
        with self._lock:
            return dict(self._placements)

    @property
    def rewrites(self) -> Dict[str, str]:
        with self._lock:
            return dict(self._rewrites)

    @property
    def cells(self) -> Dict[str, Tuple[str, ...]]:
        with self._lock:
            return dict(self._cells)

    def rows(self) -> List[LineageRow]:
        """The joined lineage table, one row per covered IR instruction.

        Rows appear in selection (emission) order, captured
        instructions in pattern-body order.
        """
        rewrites = self.rewrites
        placements = self.placements
        cells = self.cells
        rows: List[LineageRow] = []
        for match in self.matches:
            asm_op = rewrites.get(match.asm_dst, match.asm_op)
            placed = placements.get(match.asm_dst)
            owned = cells.get(match.asm_dst, ())
            for ir_dst, ir_op in zip(match.ir_dsts, match.ir_ops):
                rows.append(
                    LineageRow(
                        ir_dst=ir_dst,
                        ir_op=ir_op,
                        asm_dst=match.asm_dst,
                        asm_op=asm_op,
                        match_cost=match.cost,
                        tree=match.tree,
                        prim=placed[0] if placed else match.prim,
                        x=placed[1] if placed else None,
                        y=placed[2] if placed else None,
                        cells=owned,
                    )
                )
        return rows

    def tree_costs(self) -> Dict[int, float]:
        """Total match cost per subject tree (isel cost breakdown)."""
        totals: Dict[int, float] = {}
        for match in self.matches:
            totals[match.tree] = totals.get(match.tree, 0.0) + match.cost
        return totals

    def to_dict(self) -> Dict[str, object]:
        return {"rows": [row.to_dict() for row in self.rows()]}
