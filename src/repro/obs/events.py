"""Structured diagnostic events (LLVM-remark-style).

Spans say *how long* a stage took; events say *what it did*.  Each
:class:`Event` carries a severity, the emitting stage, an optional
provenance id (the instruction the event is about, linking it to the
lineage table of :mod:`repro.obs.provenance`), a human message, and a
flat dict of structured attributes — machine-readable, so reports and
CI can filter and count them without parsing prose.

Stages emit events through their tracer (``tracer.event(...)``); a
:class:`NullTracer` swallows them, so the uninstrumented path stays
free.  The :class:`EventLog` itself is thread-safe and mergeable,
mirroring the span/counter story of :class:`~repro.obs.tracer.Tracer`.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Severity(enum.IntEnum):
    """Event severity, ordered so logs can be filtered by level."""

    DEBUG = 10
    INFO = 20
    WARNING = 30
    ERROR = 40

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Event:
    """One structured diagnostic.

    ``time`` is seconds since the owning tracer's epoch, so events
    interleave with spans on one timeline.  ``provenance`` names the
    instruction (IR or assembly ``dst``) the event is about, or None
    for stage-level events.
    """

    severity: Severity
    stage: str
    message: str
    provenance: Optional[str] = None
    attrs: Dict[str, object] = field(default_factory=dict)
    time: float = 0.0
    #: Request identity of the tracer that emitted the event (None
    #: outside a request scope); survives Tracer.merge like span ids.
    trace_id: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "severity": str(self.severity),
            "stage": self.stage,
            "message": self.message,
            "provenance": self.provenance,
            "attrs": dict(self.attrs),
            "time": self.time,
            "trace_id": self.trace_id,
        }


class EventLog:
    """A thread-safe, append-only list of events."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: List[Event] = []

    def __getstate__(self) -> Dict[str, object]:
        with self._lock:
            state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def append(self, event: Event) -> None:
        with self._lock:
            self._events.append(event)

    def extend(self, events: List[Event]) -> None:
        with self._lock:
            self._events.extend(events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def events(self) -> List[Event]:
        """All events, in emission order."""
        with self._lock:
            return list(self._events)

    def select(
        self,
        min_severity: Severity = Severity.DEBUG,
        stage: Optional[str] = None,
        provenance: Optional[str] = None,
    ) -> List[Event]:
        """Events at or above ``min_severity``, optionally filtered."""
        return [
            event
            for event in self.events
            if event.severity >= min_severity
            and (stage is None or event.stage == stage)
            and (provenance is None or event.provenance == provenance)
        ]

    def counts_by_severity(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            key = str(event.severity)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def counts_by_stage(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.stage] = counts.get(event.stage, 0) + 1
        return counts

    def to_dicts(self) -> List[Dict[str, object]]:
        return [event.to_dict() for event in self.events]


def format_events(
    events: List[Event], min_severity: Severity = Severity.DEBUG
) -> str:
    """Render events as aligned ``severity stage message attrs`` lines."""
    rows = [e for e in events if e.severity >= min_severity]
    if not rows:
        return "(no events)"
    lines: List[str] = []
    for event in rows:
        attrs = " ".join(
            f"{name}={value}" for name, value in sorted(event.attrs.items())
        )
        where = f" [{event.provenance}]" if event.provenance else ""
        tail = f"  ({attrs})" if attrs else ""
        lines.append(
            f"{str(event.severity):>7}  {event.stage:<8}"
            f"{event.message}{where}{tail}"
        )
    return "\n".join(lines)
