"""Exporting a tracer's telemetry.

Two consumers:

* ``chrome_trace`` — the Chrome ``trace_event`` JSON format, loadable
  in ``chrome://tracing`` / Perfetto.  Spans become complete (``"X"``)
  events with microsecond timestamps (spans that unwound with an
  exception carry ``"error": true`` and are colored as terrible);
  structured diagnostics become instant (``"i"``) events; counters and
  gauges become one counter (``"C"``) event each at the trace's end.
* ``format_profile`` — a human-readable table: one row per span name
  (calls, total milliseconds, share of the root span), followed by the
  counters, gauges, histogram summaries (count/p50/p95), and an event
  severity summary.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional


def chrome_trace(tracer) -> Dict[str, object]:
    """The tracer's telemetry as a Chrome ``trace_event`` object."""
    events: List[Dict[str, object]] = []
    end_us = 0.0
    for record in tracer.spans:
        start_us = record.start * 1e6
        duration_us = record.seconds * 1e6
        end_us = max(end_us, record.end * 1e6)
        args: Dict[str, object] = {
            "depth": record.depth,
            "parent": record.parent,
        }
        if record.trace_id is not None:
            args["trace_id"] = record.trace_id
        entry: Dict[str, object] = {
            "name": record.name,
            "ph": "X",
            "ts": start_us,
            "dur": duration_us,
            "pid": 0,
            "tid": record.thread_id,
            "args": args,
        }
        if record.error:
            args["error"] = True
            entry["cname"] = "terrible"
        events.append(entry)
    for diag in tracer.events.events:
        ts_us = diag.time * 1e6
        end_us = max(end_us, ts_us)
        diag_args: Dict[str, object] = {
            "severity": str(diag.severity),
            "provenance": diag.provenance,
            **diag.attrs,
        }
        if diag.trace_id is not None:
            diag_args["trace_id"] = diag.trace_id
        events.append(
            {
                "name": f"{diag.stage}: {diag.message}",
                "ph": "i",
                "ts": ts_us,
                "pid": 0,
                "s": "g",
                "args": diag_args,
            }
        )
    for name, value in sorted(tracer.counters.items()):
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": end_us,
                "pid": 0,
                "args": {name: value},
            }
        )
    for name, value in sorted(tracer.gauges.items()):
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": end_us,
                "pid": 0,
                "args": {name: value},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(tracer, indent: Optional[int] = None) -> str:
    """``chrome_trace`` rendered as a JSON string."""
    return json.dumps(chrome_trace(tracer), indent=indent)


def write_chrome_trace(tracer, path: str) -> None:
    """Write the Chrome trace JSON to ``path``."""
    with open(path, "w") as handle:
        handle.write(chrome_trace_json(tracer, indent=2) + "\n")


def format_profile(tracer) -> str:
    """The tracer's telemetry as an aligned text table."""
    spans = tracer.spans
    lines: List[str] = []
    if spans:
        root_seconds = max(
            (s.seconds for s in spans if s.depth == 0), default=0.0
        )
        totals: Dict[str, List[float]] = {}
        for record in spans:
            entry = totals.setdefault(record.name, [0, 0.0, record.depth])
            entry[0] += 1
            entry[1] += record.seconds
            entry[2] = min(entry[2], record.depth)
        name_width = max(len("span"), *(len(n) + 2 * int(t[2]) for n, t in totals.items()))
        lines.append(
            f"{'span'.ljust(name_width)}  {'calls':>5}  {'ms':>10}  {'share':>6}"
        )
        lines.append(f"{'-' * name_width}  {'-' * 5}  {'-' * 10}  {'-' * 6}")
        for name, (calls, seconds, depth) in totals.items():
            share = seconds / root_seconds if root_seconds > 0 else 0.0
            label = "  " * int(depth) + name
            lines.append(
                f"{label.ljust(name_width)}  {calls:>5}  "
                f"{seconds * 1000:>10.3f}  {share:>5.1%}"
            )
    counters = tracer.counters
    if counters:
        lines.append("")
        width = max(len(name) for name in counters)
        lines.append("counters")
        for name in sorted(counters):
            lines.append(f"  {name.ljust(width)}  {counters[name]}")
    gauges = tracer.gauges
    if gauges:
        lines.append("")
        width = max(len(name) for name in gauges)
        lines.append("gauges")
        for name in sorted(gauges):
            lines.append(f"  {name.ljust(width)}  {gauges[name]:g}")
    histograms = tracer.histograms
    if histograms:
        from repro.obs.metrics import percentile

        lines.append("")
        width = max(len(name) for name in histograms)
        lines.append(
            f"histograms ({'name'.ljust(width)}  "
            f"{'count':>5}  {'p50':>8}  {'p95':>8})"
        )
        for name in sorted(histograms):
            values = histograms[name]
            lines.append(
                f"  {name.ljust(width)}  {len(values):>5}  "
                f"{percentile(values, 50):>8g}  {percentile(values, 95):>8g}"
            )
    severities = tracer.events.counts_by_severity()
    if severities:
        lines.append("")
        summary = ", ".join(
            f"{count} {name}" for name, count in sorted(severities.items())
        )
        lines.append(f"events: {summary}")
    return "\n".join(lines) if lines else "(no telemetry)"
