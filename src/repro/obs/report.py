"""The compile report: one artifact that explains a whole compile.

Joins everything the observability layer collects about one
:class:`~repro.compiler.ReticleResult` — the provenance lineage table
(IR op -> ASM instr + match cost -> placed location -> Verilog cells),
resource utilization by primitive kind and by device column, an ASCII
placement heatmap, the per-tree instruction-selection cost breakdown,
stage timings, and the structured event log — into a
:class:`CompileReport` that renders as JSON (machine-readable, the CI
artifact) or human text (``reticle report``).

The report is *derived*: it reads the result's artifacts and lineage,
never mutates them, so producing a report cannot perturb the compile.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.events import Event, Severity, format_events
from repro.obs.provenance import LineageRow

#: Heatmap density ramp: index = instructions on the tile (clamped).
_DENSITY = ".123456789#"

#: Widest heatmap we render before clipping columns.
_MAX_HEATMAP_COLS = 72
_MAX_HEATMAP_ROWS = 40


@dataclass
class CompileReport:
    """Everything ``reticle report`` knows about one compile."""

    name: str
    seconds: float
    cached: bool
    stages: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    lineage: List[LineageRow] = field(default_factory=list)
    #: cell kind (LUT6, FDRE, CARRY8, DSP48E2, ...) -> count
    utilization: Dict[str, int] = field(default_factory=dict)
    #: primitive kind -> {column -> cell count}
    columns: Dict[str, Dict[int, int]] = field(default_factory=dict)
    heatmaps: Dict[str, str] = field(default_factory=dict)
    #: subject-tree index -> total weighted isel cost
    tree_costs: Dict[int, float] = field(default_factory=dict)
    events: List[Event] = field(default_factory=list)

    # -- rendering ----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "cached": self.cached,
            "stages": dict(self.stages),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "lineage": [row.to_dict() for row in self.lineage],
            "utilization": dict(self.utilization),
            "columns": {
                prim: {str(col): count for col, count in sorted(cols.items())}
                for prim, cols in self.columns.items()
            },
            "heatmaps": dict(self.heatmaps),
            "tree_costs": {
                str(tree): cost for tree, cost in sorted(self.tree_costs.items())
            },
            "events": [event.to_dict() for event in self.events],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def format_text(self, min_severity: Severity = Severity.INFO) -> str:
        return format_report(self, min_severity=min_severity)


# -- building ---------------------------------------------------------


def _placement_heatmaps(placed) -> Dict[str, str]:
    """One density grid per primitive kind, from placed instructions.

    Rows print top-down (highest row first, matching device
    orientation); each tile's character encodes how many instructions
    occupy it (an instruction's row span counts every row it covers).
    """
    from repro.asm.ast import AsmInstr  # local: avoid cycle at import

    occupancy: Dict[str, Dict[Tuple[int, int], int]] = {}
    spans: Dict[str, Tuple[int, int]] = {}
    for instr in placed.instrs:
        if not isinstance(instr, AsmInstr):
            continue
        if not instr.loc.is_resolved:
            continue
        prim = instr.loc.prim.value
        col, row = instr.loc.position()
        grid = occupancy.setdefault(prim, {})
        grid[(col, row)] = grid.get((col, row), 0) + 1
        max_col, max_row = spans.get(prim, (0, 0))
        spans[prim] = (max(max_col, col), max(max_row, row))

    heatmaps: Dict[str, str] = {}
    for prim, grid in sorted(occupancy.items()):
        max_col, max_row = spans[prim]
        cols = min(max_col + 1, _MAX_HEATMAP_COLS)
        rows = min(max_row + 1, _MAX_HEATMAP_ROWS)
        lines: List[str] = []
        for row in range(rows - 1, -1, -1):
            chars = []
            for col in range(cols):
                count = grid.get((col, row), 0)
                chars.append(_DENSITY[min(count, len(_DENSITY) - 1)])
            lines.append(f"{row:>3} {''.join(chars)}")
        clipped = ""
        if max_col + 1 > cols or max_row + 1 > rows:
            clipped = (
                f"\n    (clipped to {cols}x{rows} of "
                f"{max_col + 1}x{max_row + 1})"
            )
        heatmaps[prim] = "\n".join(lines) + clipped
    return heatmaps


def _column_utilization(netlist) -> Dict[str, Dict[int, int]]:
    """Cells per (primitive kind, device column)."""
    columns: Dict[str, Dict[int, int]] = {}
    for cell in netlist.cells:
        if cell.loc is None:
            continue
        prim, col, _row = cell.loc
        per_col = columns.setdefault(prim.value, {})
        per_col[col] = per_col.get(col, 0) + 1
    return columns


def _cell_utilization(netlist) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for cell in netlist.cells:
        counts[cell.kind] = counts.get(cell.kind, 0) + 1
    return counts


def build_report(result) -> CompileReport:
    """Build the report of one :class:`~repro.compiler.ReticleResult`."""
    metrics = result.metrics
    lineage_rows: List[LineageRow] = []
    tree_costs: Dict[int, float] = {}
    if result.lineage is not None:
        lineage_rows = result.lineage.rows()
        tree_costs = result.lineage.tree_costs()
    events: List[Event] = []
    if result.trace is not None:
        events = result.trace.events.events
    return CompileReport(
        name=result.source.name,
        seconds=result.seconds,
        cached=result.cached,
        stages=dict(metrics.stages) if metrics is not None else {},
        counters=dict(metrics.counters) if metrics is not None else {},
        gauges=dict(metrics.gauges) if metrics is not None else {},
        lineage=lineage_rows,
        utilization=_cell_utilization(result.netlist),
        columns=_column_utilization(result.netlist),
        heatmaps=_placement_heatmaps(result.placed),
        tree_costs=tree_costs,
        events=events,
    )


# -- text rendering ---------------------------------------------------


def _format_lineage_table(rows: List[LineageRow]) -> str:
    if not rows:
        return "(no lineage recorded)"
    header = ("ir", "op", "asm", "asm op", "cost", "loc", "cells")
    table: List[Tuple[str, ...]] = [header]
    for row in rows:
        loc = "??"
        if row.x is not None and row.y is not None:
            loc = f"{row.prim}({row.x}, {row.y})"
        cells = ", ".join(row.cells[:3])
        if len(row.cells) > 3:
            cells += f", +{len(row.cells) - 3} more"
        table.append(
            (
                row.ir_dst,
                row.ir_op,
                row.asm_dst,
                row.asm_op,
                f"{row.match_cost:g}",
                loc,
                cells or "-",
            )
        )
    widths = [
        max(len(entry[i]) for entry in table) for i in range(len(header))
    ]
    lines = []
    for index, entry in enumerate(table):
        lines.append(
            "  ".join(part.ljust(widths[i]) for i, part in enumerate(entry))
        )
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_report(
    report: CompileReport, min_severity: Severity = Severity.INFO
) -> str:
    """Human-readable rendering of one compile report.

    ``min_severity`` bounds the event listing (the per-severity counts
    in the section header always cover every recorded event).
    """
    cached = " (cached)" if report.cached else ""
    lines: List[str] = [
        f"== compile report: {report.name}{cached} ==",
        f"total {report.seconds * 1000:.3f} ms",
    ]
    if report.stages:
        stage_parts = ", ".join(
            f"{stage} {seconds * 1000:.3f}"
            for stage, seconds in report.stages.items()
        )
        lines.append(f"stages (ms): {stage_parts}")

    lines.append("")
    lines.append("-- lineage (IR op -> ASM instr -> loc -> cells) --")
    lines.append(_format_lineage_table(report.lineage))

    if report.tree_costs:
        lines.append("")
        lines.append("-- isel cost per subject tree --")
        for tree, cost in sorted(report.tree_costs.items()):
            lines.append(f"  tree {tree}: {cost:g}")

    if report.utilization:
        lines.append("")
        lines.append("-- utilization by cell kind --")
        width = max(len(kind) for kind in report.utilization)
        for kind in sorted(report.utilization):
            lines.append(
                f"  {kind.ljust(width)}  {report.utilization[kind]}"
            )

    if report.columns:
        lines.append("")
        lines.append("-- cells per device column --")
        for prim in sorted(report.columns):
            cols = report.columns[prim]
            parts = ", ".join(
                f"x{col}: {count}" for col, count in sorted(cols.items())
            )
            lines.append(f"  {prim}: {parts}")

    if report.heatmaps:
        lines.append("")
        lines.append("-- placement heatmap (row-major, top row first) --")
        for prim, grid in report.heatmaps.items():
            lines.append(f"  [{prim}]")
            for grid_line in grid.splitlines():
                lines.append(f"  {grid_line}")

    lines.append("")
    severities: Dict[str, int] = {}
    for event in report.events:
        key = str(event.severity)
        severities[key] = severities.get(key, 0) + 1
    if severities:
        summary = ", ".join(
            f"{count} {name}" for name, count in sorted(severities.items())
        )
        lines.append(f"-- events ({summary}) --")
        visible = [e for e in report.events if e.severity >= min_severity]
        if visible:
            lines.append(format_events(visible))
        else:
            lines.append("(debug only; rerun with --events debug to list)")
    else:
        lines.append("-- events --")
        lines.append("(no events)")
    return "\n".join(lines)


# -- cross-target comparison ------------------------------------------


@dataclass(frozen=True)
class CrossTargetRow:
    """One (target, function) leg of a multi-target compile."""

    target: str
    func: str
    seconds: float
    cached: bool
    asm_instrs: int
    resources: Dict[str, int]
    critical_ps: int
    fmax_mhz: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "func": self.func,
            "seconds": self.seconds,
            "cached": self.cached,
            "asm_instrs": self.asm_instrs,
            "resources": dict(self.resources),
            "critical_ps": self.critical_ps,
            "fmax_mhz": self.fmax_mhz,
        }


@dataclass
class CrossTargetReport:
    """Area/latency/utilization of one program across targets.

    Built from the nested result of
    :func:`repro.compiler.compile_prog_multi`; rows come in (target,
    function) registry order, so two runs of the same fan-out render
    identically.  The same program costs very different resources per
    fabric — a multiply is one DSP slice on UltraScale, a LUT multiply
    on ECP5's fabric tier, and a shift-add adder chain on iCE40 — and
    this table is where that portability tradeoff (paper Figure 10)
    becomes visible in one artifact.
    """

    rows: List[CrossTargetRow] = field(default_factory=list)

    @property
    def targets(self) -> List[str]:
        seen: Dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row.target, None)
        return list(seen)

    def to_dict(self) -> Dict[str, object]:
        return {"rows": [row.to_dict() for row in self.rows]}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def build_cross_target_report(results) -> CrossTargetReport:
    """Summarize ``{target: {func: ReticleResult}}`` into one table."""
    from repro.compiler import resolve_target
    from repro.netlist.stats import resource_counts
    from repro.timing.asm_estimate import estimate_asm_timing

    rows: List[CrossTargetRow] = []
    for target_name, per_func in results.items():
        target, _device = resolve_target(target_name)
        for func_name, result in per_func.items():
            timing = estimate_asm_timing(result.placed, target)
            rows.append(
                CrossTargetRow(
                    target=target_name,
                    func=func_name,
                    seconds=result.seconds,
                    cached=result.cached,
                    asm_instrs=sum(1 for _ in result.placed.asm_instrs()),
                    resources=resource_counts(result.netlist).as_dict(),
                    critical_ps=timing.critical_ps,
                    fmax_mhz=timing.fmax_mhz,
                )
            )
    return CrossTargetReport(rows=rows)


def format_cross_target_report(report: CrossTargetReport) -> str:
    """Human rendering: one row per (function, target) pair."""
    if not report.rows:
        return "(no compiles to compare)"
    header = (
        "func", "target", "luts", "ffs", "carries", "dsps", "brams",
        "asm", "crit ps", "fmax MHz", "ms",
    )
    table: List[Tuple[str, ...]] = [header]
    for row in report.rows:
        res = row.resources
        table.append(
            (
                row.func,
                row.target + (" (cached)" if row.cached else ""),
                str(res.get("luts", 0)),
                str(res.get("ffs", 0)),
                str(res.get("carries", 0)),
                str(res.get("dsps", 0)),
                str(res.get("brams", 0)),
                str(row.asm_instrs),
                str(row.critical_ps),
                f"{row.fmax_mhz:.1f}",
                f"{row.seconds * 1000:.2f}",
            )
        )
    widths = [
        max(len(entry[i]) for entry in table) for i in range(len(header))
    ]
    lines = ["== cross-target report =="]
    for index, entry in enumerate(table):
        lines.append(
            "  ".join(part.ljust(widths[i]) for i, part in enumerate(entry))
        )
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
