"""Composable compiler passes: the pipeline as data.

The pipeline of :class:`~repro.compiler.ReticleCompiler` used to be a
hard-coded straight-line method; this package makes it a value.  A
*pipeline* is a tuple of :class:`Pass` objects resolved from a spec
(preset name, ``"a,b,c"`` string, or explicit sequence), executed by a
:class:`PassManager` over one :class:`CompileArtifact` under one
:class:`CompileContext`:

    from repro.passes import (
        CompileArtifact, CompileContext, PassManager, resolve_pipeline,
    )

    manager = PassManager(resolve_pipeline("full"))
    artifact = manager.run(
        CompileArtifact(source=func, func=func),
        CompileContext(target=target, device=device, tracer=tracer),
    )
    artifact.netlist   # the compiled design

The manager emits the :mod:`repro.obs` spans generically — a root
``compile`` span with one child per pass, per-pass seconds in
``ctx.stats`` — so new passes are observable for free.

Compiles are memoized by :class:`CompileCache` under a content
address (:func:`cache_key`): SHA-256 of the canonical-printed IR, the
target and device names, the pipeline's pass names, and the options
dict.  The cache has a bounded in-memory LRU layer plus an optional
on-disk layer shared across processes (``--cache-dir``).
"""

from repro.passes.cache import CachedCompile, CompileCache, cache_key
from repro.passes.core import (
    CompileArtifact,
    CompileContext,
    Pass,
    PassManager,
)
from repro.passes.stages import (
    BACKEND_PASSES,
    PASS_REGISTRY,
    PIPELINE_PRESETS,
    CascadePass,
    CodegenPass,
    OptimizePass,
    PlacePass,
    SelectPass,
    VectorizePass,
    pipeline_names,
    register_pass,
    resolve_pipeline,
)

__all__ = [
    "Pass",
    "PassManager",
    "CompileArtifact",
    "CompileContext",
    "CompileCache",
    "CachedCompile",
    "cache_key",
    "PASS_REGISTRY",
    "PIPELINE_PRESETS",
    "BACKEND_PASSES",
    "register_pass",
    "resolve_pipeline",
    "pipeline_names",
    "OptimizePass",
    "VectorizePass",
    "SelectPass",
    "CascadePass",
    "PlacePass",
    "CodegenPass",
]
