"""The content-addressed compile cache.

A compile is a pure function of (canonical IR text, target, device,
pipeline, options), so its per-stage artifacts can be memoized under a
SHA-256 of exactly those inputs.  :func:`cache_key` builds the key;
:class:`CompileCache` stores :class:`CachedCompile` entries in a
bounded in-memory LRU layer and, optionally, an on-disk layer
(``cache_dir``) shared across processes.

Key recipe (every component is deterministic across processes — no
salted ``hash()``, no ids):

* the function pretty-printed with explicit resource annotations
  (``print_func(func, explicit_res=True)``), so alpha-renaming a wire
  or changing an op changes the key;
* the target and device *names* (``ultrascale``/``xczu3eg``, ...);
* the pipeline's pass names in execution order;
* the options dict, JSON-serialized with sorted keys — and *strictly*
  serialized: a non-JSON-serializable option value raises
  :class:`~repro.errors.CacheKeyError` instead of being silently
  stringified (a ``repr`` embedding ``id()`` would make keys unstable
  across processes and poison a shared disk tier).

The disk layer is designed for many processes sharing one
``cache_dir`` (the compile daemon's shared tier):

* entries are written atomically (temp file + fsync + rename), so a
  reader never observes a torn entry;
* a corrupt entry is *quarantined* — renamed to ``<key>.bad`` and
  counted as ``cache.corrupt`` — so repeated lookups of the same key
  stay a cheap ``os.path.exists`` miss instead of re-unpickling
  garbage on every ``get``;
* with ``max_disk_bytes`` set, the disk tier is evicted
  least-recently-used (hit recency is tracked via file mtime) under a
  per-directory ``flock`` so concurrent evictors never race; evictions
  surface as ``cache.evictions`` and the post-eviction footprint as
  the ``cache.disk_bytes`` gauge;
* :meth:`CompileCache.sweep` reclaims stale ``*.tmp`` litter left by
  crashed writers (the daemon runs it at startup).

Hits and misses are reported through the caller's tracer as
``cache.*`` counters (``cache.hits``, ``cache.misses``,
``cache.memory_hits``, ``cache.disk_hits``, ``cache.stores``,
``cache.corrupt``, ``cache.evictions``), so they surface in
``--profile``, ``reticle bench pipeline``, and the daemon's
``/stats`` endpoint next to the stage timings.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.errors import CacheKeyError
from repro.ir.printer import print_func
from repro.obs import NULL_TRACER

try:  # POSIX only; the lock degrades to best-effort elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover
    from repro.asm.ast import AsmFunc
    from repro.ir.ast import Func
    from repro.netlist.core import Netlist


def _encode_options(options: Dict[str, object]) -> Dict[str, object]:
    """Validate that every option value is strictly JSON-serializable.

    Returns the dict unchanged on success; raises
    :class:`CacheKeyError` naming the offending option otherwise.
    Checking per-option (not just the whole payload) turns an opaque
    ``TypeError: Object of type X is not JSON serializable`` into a
    diagnosis that names the key to fix.
    """
    for name, value in options.items():
        try:
            json.dumps(value, sort_keys=True)
        except (TypeError, ValueError) as error:
            raise CacheKeyError(
                f"compile option {name!r} is not JSON-serializable "
                f"({type(value).__name__}: {value!r}); cache keys must "
                "be pure functions of the compile inputs, so options "
                "must hold only JSON data (str/int/float/bool/None/"
                "list/dict)"
            ) from error
    return options


def cache_key(
    func: "Func",
    target_name: str,
    device_name: str,
    pipeline: Sequence[str],
    options: Optional[Dict[str, object]] = None,
) -> str:
    """The SHA-256 content address of one compile's inputs.

    Raises :class:`~repro.errors.CacheKeyError` when an option value
    is not JSON-serializable — silently stringifying it (the old
    ``default=str`` behaviour) would admit ``repr``-based values whose
    text embeds ``id()``s, making the key differ across processes and
    poisoning any shared cache directory.
    """
    payload = json.dumps(
        {
            "ir": print_func(func, explicit_res=True),
            "target": target_name,
            "device": device_name,
            "pipeline": list(pipeline),
            "options": _encode_options(dict(options) if options else {}),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CachedCompile:
    """The memoized per-stage artifacts of one compile.

    ``stages`` keeps the cold compile's per-stage seconds so a warm
    hit can still report what the work *would* have cost.
    ``lineage`` keeps the cold compile's provenance so a warm hit can
    still render a full ``reticle report`` (read via ``getattr`` with
    a None default, so pre-provenance disk entries stay loadable).
    """

    selected: "AsmFunc"
    cascaded: "AsmFunc"
    placed: "AsmFunc"
    netlist: "Netlist"
    stages: Dict[str, float] = field(default_factory=dict)
    lineage: Optional[object] = None


#: Age (seconds) past which an orphaned ``*.tmp`` file is considered
#: stale litter from a crashed writer.  Generous enough that a live
#: writer mid-``pickle.dump`` is never swept out from under itself.
STALE_TMP_SECONDS = 15 * 60


def atomic_pickle_write(path: str, obj: object) -> bool:
    """Atomically publish ``obj`` as a pickle at ``path``.

    The temp file lives in the destination directory so the final
    ``os.replace`` stays a same-directory atomic rename, and the data
    is fsynced before the rename so a crash can never publish a file
    whose bytes did not reach the disk (a torn entry with a valid
    name).  Best-effort: every failure — including a missing parent
    directory — returns False instead of raising, and the temp file
    never outlives the call.  Shared by the compile cache's disk tier
    and the placement-reuse bank (:mod:`repro.place.reuse`).
    """
    directory = os.path.dirname(path)
    try:
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    except OSError:
        return False
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(obj, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return True
    except Exception:  # noqa: BLE001 - disk layers are best-effort
        return False
    finally:
        # Gone on the success path (renamed); on *any* failure path it
        # must be unlinked here or it leaks until a sweep.
        try:
            os.unlink(tmp)
        except OSError:
            pass


def quarantined_pickle_read(
    path: str, expect_type: type, tracer=NULL_TRACER
) -> Optional[object]:
    """Load a pickle, quarantining it on corruption.

    Returns the object when it loads and is an ``expect_type``
    instance.  A missing file is an ordinary None (lost a race with a
    concurrent evictor — nothing to quarantine).  Corrupt bytes or a
    wrong type rename the file to ``<path>.bad`` (counted as
    ``cache.corrupt``) so later reads of the same path miss cheaply
    instead of re-unpickling garbage.
    """
    try:
        with open(path, "rb") as handle:
            entry = pickle.load(handle)
    except FileNotFoundError:
        return None
    except Exception:  # noqa: BLE001 - corrupt entry degrades to miss
        _quarantine_path(path, tracer=tracer)
        return None
    if not isinstance(entry, expect_type):
        _quarantine_path(path, tracer=tracer)
        return None
    return entry


def _quarantine_path(path: str, tracer=NULL_TRACER) -> None:
    """Move a corrupt entry aside so later reads miss cheaply.

    The rename is atomic, keeps the bytes around for post-mortems,
    and stops every subsequent read of the same path from re-opening
    and re-unpickling the same garbage.
    """
    try:
        os.replace(path, path + ".bad")
    except OSError:
        # Lost a race with another quarantiner/evictor, or the
        # filesystem is read-only; either way the miss stands.
        return
    tracer.count("cache.corrupt")

#: Hex digits of the key used as the shard subdirectory name (2 chars
#: = 256 shards, plenty for millions of entries at sane dir sizes).
SHARD_PREFIX_CHARS = 2


class CompileCache:
    """Two-layer (memory + optional disk) store of compile artifacts.

    Thread-safe: one lock guards the LRU dict, so concurrent
    ``compile_prog`` workers can share one cache.  Disk entries are
    pickles written atomically (temp file + fsync + rename), one file
    per key, so concurrent processes sharing a ``cache_dir`` never
    observe a torn entry.  A corrupt or unreadable disk entry degrades
    to a miss — and is quarantined to ``<key>.bad`` so it is paid for
    once, not on every lookup.

    ``max_disk_bytes`` bounds the disk tier: after every store the
    total ``*.pkl`` footprint is trimmed back under the budget by
    deleting least-recently-used entries (mtime order; hits bump
    mtime).  Eviction runs under a per-directory file lock so
    concurrent processes cooperate instead of double-deleting.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        max_memory_entries: int = 256,
        max_disk_bytes: Optional[int] = None,
    ) -> None:
        self.cache_dir = cache_dir
        self.max_memory_entries = max_memory_entries
        self.max_disk_bytes = max_disk_bytes
        self._memory: "OrderedDict[str, CachedCompile]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if cache_dir is not None:
            os.makedirs(cache_dir, exist_ok=True)

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def _disk_path(self, key: str) -> Optional[str]:
        """Where ``key``'s entry lives: a 2-hex-char shard subdirectory.

        Device-scale workloads push thousands of entries into one
        cache; sharding by digest prefix keeps per-directory entry
        counts (and ``listdir`` costs) bounded.  SHA-256 keys are
        uniform, so 256 shards split the population evenly.
        """
        if self.cache_dir is None:
            return None
        return os.path.join(
            self.cache_dir, key[:SHARD_PREFIX_CHARS], f"{key}.pkl"
        )

    def _legacy_path(self, key: str) -> Optional[str]:
        """The pre-sharding flat location of ``key``'s entry."""
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, f"{key}.pkl")

    def _scan_dirs(self) -> List[str]:
        """Cache dir plus its shard subdirectories (legacy entries
        live at the top level, sharded entries one level down)."""
        assert self.cache_dir is not None
        dirs = [self.cache_dir]
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return dirs
        for name in sorted(names):
            if len(name) != SHARD_PREFIX_CHARS or any(
                c not in "0123456789abcdef" for c in name
            ):
                continue
            path = os.path.join(self.cache_dir, name)
            if os.path.isdir(path):
                dirs.append(path)
        return dirs

    # -- lookup ------------------------------------------------------

    def get(self, key: str, tracer=NULL_TRACER) -> Optional[CachedCompile]:
        """The entry under ``key``, or None; records ``cache.*``."""
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
                self.hits += 1
        if entry is not None:
            tracer.count("cache.hits")
            tracer.count("cache.memory_hits")
            return entry
        entry = self._disk_get(key, tracer=tracer)
        if entry is not None:
            with self._lock:
                self.hits += 1
            tracer.count("cache.hits")
            tracer.count("cache.disk_hits")
            self._memory_put(key, entry)
            return entry
        with self._lock:
            self.misses += 1
        tracer.count("cache.misses")
        return None

    def _disk_get(
        self, key: str, tracer=NULL_TRACER
    ) -> Optional[CachedCompile]:
        path = self._disk_path(key)
        if path is None:
            return None
        legacy = False
        if not os.path.exists(path):
            # Migration path: entries written before directory
            # sharding live flat in the cache dir; a hit reads them
            # in place and moves them into their shard.
            flat = self._legacy_path(key)
            assert flat is not None
            if not os.path.exists(flat):
                return None
            path, legacy = flat, True
        entry = quarantined_pickle_read(path, CachedCompile, tracer=tracer)
        if entry is None:
            return None
        if legacy:
            path = self._migrate(key, path, tracer=tracer)
        # Bump recency for LRU eviction; the entry file itself is the
        # index, so a hit is "used" when its mtime moves forward.
        try:
            os.utime(path, None)
        except OSError:
            pass
        return entry

    def _migrate(self, key: str, flat: str, tracer=NULL_TRACER) -> str:
        """Move a legacy flat entry into its shard subdirectory.

        Atomic (``os.replace`` within one filesystem) and best-effort:
        losing a race with another migrator or an evictor leaves the
        entry wherever the winner put it, and the already-loaded bytes
        are served either way.
        """
        target = self._disk_path(key)
        assert target is not None
        try:
            os.makedirs(os.path.dirname(target), exist_ok=True)
            os.replace(flat, target)
        except OSError:
            return flat
        tracer.count("cache.migrated")
        return target

    # -- store -------------------------------------------------------

    def put(
        self, key: str, entry: CachedCompile, tracer=NULL_TRACER
    ) -> None:
        """Store ``entry`` in memory and (when configured) on disk."""
        self._memory_put(key, entry)
        self._disk_put(key, entry, tracer=tracer)
        tracer.count("cache.stores")

    def _memory_put(self, key: str, entry: CachedCompile) -> None:
        with self._lock:
            self._memory[key] = entry
            self._memory.move_to_end(key)
            while len(self._memory) > self.max_memory_entries:
                self._memory.popitem(last=False)

    def _disk_put(
        self, key: str, entry: CachedCompile, tracer=NULL_TRACER
    ) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        atomic_pickle_write(path, entry)
        self._evict_disk(tracer=tracer)

    # -- disk-tier maintenance --------------------------------------

    def _entry_files(self) -> List[Tuple[str, float, int]]:
        """(path, mtime, size) of every disk entry, oldest first.

        Spans all shard subdirectories plus legacy flat entries, so
        LRU eviction ranks the whole tier in one recency order.
        """
        assert self.cache_dir is not None
        files: List[Tuple[str, float, int]] = []
        for directory in self._scan_dirs():
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            for name in names:
                if not name.endswith(".pkl"):
                    continue
                path = os.path.join(directory, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue  # evicted concurrently
                files.append((path, stat.st_mtime, stat.st_size))
        files.sort(key=lambda item: item[1])
        return files

    def disk_bytes(self) -> int:
        """The current ``*.pkl`` footprint of the disk tier."""
        if self.cache_dir is None:
            return 0
        return sum(size for _, _, size in self._entry_files())

    def _dir_lock(self):
        """An exclusive advisory lock on the cache directory.

        Serializes evictors and sweepers across *processes*; entry
        reads and atomic writes never take it (they are safe without).
        Returns an open fd to hold for the lock's lifetime, or None
        when locking is unavailable (non-POSIX).
        """
        if fcntl is None or self.cache_dir is None:
            return None
        fd = os.open(
            os.path.join(self.cache_dir, ".lock"),
            os.O_CREAT | os.O_RDWR,
            0o644,
        )
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
        except OSError:
            os.close(fd)
            return None
        return fd

    def _unlock(self, fd) -> None:
        if fd is None:
            return
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def _evict_disk(self, tracer=NULL_TRACER) -> int:
        """Trim the disk tier under ``max_disk_bytes`` (LRU by mtime).

        Returns the number of entries evicted.  Holds the directory
        lock so two processes finishing stores at the same moment
        don't both walk the directory and double-delete.
        """
        if self.cache_dir is None or self.max_disk_bytes is None:
            return 0
        lock_fd = self._dir_lock()
        evicted = 0
        try:
            files = self._entry_files()
            total = sum(size for _, _, size in files)
            for path, _, size in files:
                if total <= self.max_disk_bytes:
                    break
                try:
                    os.unlink(path)
                except OSError:
                    continue
                total -= size
                evicted += 1
            tracer.gauge("cache.disk_bytes", float(total))
        finally:
            self._unlock(lock_fd)
        if evicted:
            with self._lock:
                self.evictions += evicted
            tracer.count("cache.evictions", evicted)
        return evicted

    def sweep(
        self,
        tracer=NULL_TRACER,
        stale_tmp_seconds: float = STALE_TMP_SECONDS,
        now: Optional[float] = None,
    ) -> int:
        """Reclaim stale ``*.tmp`` litter left by crashed writers.

        A writer that dies between ``mkstemp`` and its ``finally``
        (SIGKILL, power loss) leaks its temp file; nothing in the
        normal read/write path ever touches those names again, so an
        explicit sweep — run by the daemon at startup — is the only
        reclamation point.  Only files older than
        ``stale_tmp_seconds`` go (a live writer's fresh tmp survives).
        Returns the number of files removed, also counted as
        ``cache.tmp_swept``.
        """
        if self.cache_dir is None:
            return 0
        now = time.time() if now is None else now
        lock_fd = self._dir_lock()
        swept = 0
        try:
            for directory in self._scan_dirs():
                try:
                    names = os.listdir(directory)
                except OSError:
                    continue
                for name in names:
                    if not name.endswith(".tmp"):
                        continue
                    path = os.path.join(directory, name)
                    try:
                        if now - os.stat(path).st_mtime < stale_tmp_seconds:
                            continue
                        os.unlink(path)
                    except OSError:
                        continue
                    swept += 1
        finally:
            self._unlock(lock_fd)
        if swept:
            tracer.count("cache.tmp_swept", swept)
        return swept

    def clear(self) -> None:
        """Drop the memory layer (disk entries are left in place)."""
        with self._lock:
            self._memory.clear()
