"""The content-addressed compile cache.

A compile is a pure function of (canonical IR text, target, device,
pipeline, options), so its per-stage artifacts can be memoized under a
SHA-256 of exactly those inputs.  :func:`cache_key` builds the key;
:class:`CompileCache` stores :class:`CachedCompile` entries in a
bounded in-memory LRU layer and, optionally, an on-disk layer
(``cache_dir``) shared across processes.

Key recipe (every component is deterministic across processes — no
salted ``hash()``, no ids):

* the function pretty-printed with explicit resource annotations
  (``print_func(func, explicit_res=True)``), so alpha-renaming a wire
  or changing an op changes the key;
* the target and device *names* (``ultrascale``/``xczu3eg``, ...);
* the pipeline's pass names in execution order;
* the options dict, JSON-serialized with sorted keys.

Hits and misses are reported through the caller's tracer as
``cache.*`` counters (``cache.hits``, ``cache.misses``,
``cache.memory_hits``, ``cache.disk_hits``, ``cache.stores``), so they
surface in ``--profile`` and ``reticle bench pipeline`` next to the
stage timings.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, TYPE_CHECKING

from repro.ir.printer import print_func
from repro.obs import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover
    from repro.asm.ast import AsmFunc
    from repro.ir.ast import Func
    from repro.netlist.core import Netlist


def cache_key(
    func: "Func",
    target_name: str,
    device_name: str,
    pipeline: Sequence[str],
    options: Optional[Dict[str, object]] = None,
) -> str:
    """The SHA-256 content address of one compile's inputs."""
    payload = json.dumps(
        {
            "ir": print_func(func, explicit_res=True),
            "target": target_name,
            "device": device_name,
            "pipeline": list(pipeline),
            "options": dict(options) if options else {},
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CachedCompile:
    """The memoized per-stage artifacts of one compile.

    ``stages`` keeps the cold compile's per-stage seconds so a warm
    hit can still report what the work *would* have cost.
    ``lineage`` keeps the cold compile's provenance so a warm hit can
    still render a full ``reticle report`` (read via ``getattr`` with
    a None default, so pre-provenance disk entries stay loadable).
    """

    selected: "AsmFunc"
    cascaded: "AsmFunc"
    placed: "AsmFunc"
    netlist: "Netlist"
    stages: Dict[str, float] = field(default_factory=dict)
    lineage: Optional[object] = None


class CompileCache:
    """Two-layer (memory + optional disk) store of compile artifacts.

    Thread-safe: one lock guards the LRU dict, so concurrent
    ``compile_prog`` workers can share one cache.  Disk entries are
    pickles written atomically (temp file + rename), one file per key,
    so concurrent processes sharing a ``cache_dir`` never observe a
    torn entry.  A corrupt or unreadable disk entry degrades to a
    miss, never an error.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        max_memory_entries: int = 256,
    ) -> None:
        self.cache_dir = cache_dir
        self.max_memory_entries = max_memory_entries
        self._memory: "OrderedDict[str, CachedCompile]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        if cache_dir is not None:
            os.makedirs(cache_dir, exist_ok=True)

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def _disk_path(self, key: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, f"{key}.pkl")

    # -- lookup ------------------------------------------------------

    def get(self, key: str, tracer=NULL_TRACER) -> Optional[CachedCompile]:
        """The entry under ``key``, or None; records ``cache.*``."""
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
                self.hits += 1
        if entry is not None:
            tracer.count("cache.hits")
            tracer.count("cache.memory_hits")
            return entry
        entry = self._disk_get(key)
        if entry is not None:
            with self._lock:
                self.hits += 1
            tracer.count("cache.hits")
            tracer.count("cache.disk_hits")
            self._memory_put(key, entry)
            return entry
        with self._lock:
            self.misses += 1
        tracer.count("cache.misses")
        return None

    def _disk_get(self, key: str) -> Optional[CachedCompile]:
        path = self._disk_path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except Exception:  # noqa: BLE001 - corrupt entry degrades to miss
            return None
        return entry if isinstance(entry, CachedCompile) else None

    # -- store -------------------------------------------------------

    def put(
        self, key: str, entry: CachedCompile, tracer=NULL_TRACER
    ) -> None:
        """Store ``entry`` in memory and (when configured) on disk."""
        self._memory_put(key, entry)
        self._disk_put(key, entry)
        tracer.count("cache.stores")

    def _memory_put(self, key: str, entry: CachedCompile) -> None:
        with self._lock:
            self._memory[key] = entry
            self._memory.move_to_end(key)
            while len(self._memory) > self.max_memory_entries:
                self._memory.popitem(last=False)

    def _disk_put(self, key: str, entry: CachedCompile) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except Exception:  # noqa: BLE001 - disk layer is best-effort
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def clear(self) -> None:
        """Drop the memory layer (disk entries are left in place)."""
        with self._lock:
            self._memory.clear()
