"""The six Figure 7 stages as registered passes, plus named presets.

The registry maps pass names to zero-argument factories; presets map a
memorable name to a tuple of pass names.  :func:`resolve_pipeline`
turns any pipeline *spec* — a preset name, a comma-separated pass
list, a sequence of names, or ready-made :class:`Pass` objects — into
the tuple of pass instances a :class:`~repro.passes.core.PassManager`
runs.

Stage factories resolve their imports at *construction* time (pipeline
build), never inside :meth:`run` — a lazy module import inside a pass
would inflate that pass's first span, which is exactly the
first-compile timing bug the observability layer fixed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple, Union

from repro.errors import ReticleError
from repro.obs import Severity
from repro.passes.core import CompileArtifact, CompileContext, Pass

#: name -> zero-argument factory producing a fresh pass instance.
PASS_REGISTRY: Dict[str, Callable[[], Pass]] = {}


def register_pass(name: str) -> Callable[[Callable[[], Pass]], Callable[[], Pass]]:
    """Register ``factory`` under ``name`` (decorator)."""

    def decorate(factory: Callable[[], Pass]) -> Callable[[], Pass]:
        if name in PASS_REGISTRY:
            raise ReticleError(f"duplicate pass name: {name!r}")
        PASS_REGISTRY[name] = factory
        return factory

    return decorate


@register_pass("optimize")
class OptimizePass(Pass):
    """Copy-propagation, constant folding, and DCE to a fixpoint."""

    name = "optimize"

    def __init__(self) -> None:
        from repro.ir.optimize import optimize_func

        self._optimize = optimize_func

    def run(self, artifact: CompileArtifact, ctx: CompileContext) -> None:
        artifact.func = self._optimize(artifact.func)


@register_pass("vectorize")
class VectorizePass(Pass):
    """Auto-combine independent scalar ops into vectors (paper §8.2)."""

    name = "vectorize"

    def __init__(self) -> None:
        from repro.ir.vectorize import vectorize_func

        self._vectorize = vectorize_func

    def run(self, artifact: CompileArtifact, ctx: CompileContext) -> None:
        artifact.func = self._vectorize(artifact.func).func


@register_pass("select")
class SelectPass(Pass):
    """Tree-covering instruction selection against the target (§5.1)."""

    name = "select"

    def run(self, artifact: CompileArtifact, ctx: CompileContext) -> None:
        artifact.selected = ctx.get_selector().select(
            artifact.func, tracer=ctx.tracer, lineage=ctx.lineage
        )
        artifact.asm = artifact.selected


@register_pass("cascade")
class CascadePass(Pass):
    """The cascading layout optimization (§5.2).

    Honours ``ctx.options["cascade"]``: when false the pass is an
    identity (it still runs, so stage timings keep the same shape —
    this mirrors the pre-refactor ``cascade=False`` behaviour).
    """

    name = "cascade"

    def __init__(self) -> None:
        from repro.layout.cascade import apply_cascading

        self._apply = apply_cascading

    def run(self, artifact: CompileArtifact, ctx: CompileContext) -> None:
        asm = artifact.asm if artifact.asm is not None else artifact.selected
        if asm is None:
            raise ReticleError("cascade pass needs a selected function")
        if ctx.options.get("cascade", True):
            asm = self._apply(
                asm, ctx.target, tracer=ctx.tracer, lineage=ctx.lineage
            )
        else:
            ctx.tracer.event(
                Severity.INFO,
                "cascade",
                "cascade rewriting skipped (cascade=False)",
                func=asm.name,
            )
        artifact.cascaded = asm
        artifact.asm = asm


@register_pass("place")
class PlacePass(Pass):
    """CSP placement with binary-search area shrinking (§5.3)."""

    name = "place"

    def run(self, artifact: CompileArtifact, ctx: CompileContext) -> None:
        if artifact.asm is None:
            raise ReticleError("place pass needs an assembly function")
        artifact.placed = ctx.get_placer().place(
            artifact.asm, tracer=ctx.tracer, lineage=ctx.lineage
        )
        artifact.asm = artifact.placed


@register_pass("codegen")
class CodegenPass(Pass):
    """Structural code generation: placed assembly -> netlist (§5.4)."""

    name = "codegen"

    def __init__(self) -> None:
        from repro.codegen.generate import generate_netlist

        self._generate = generate_netlist

    def run(self, artifact: CompileArtifact, ctx: CompileContext) -> None:
        if artifact.asm is None:
            raise ReticleError("codegen pass needs a placed function")
        artifact.netlist = self._generate(
            artifact.asm, ctx.target, tracer=ctx.tracer, lineage=ctx.lineage
        )


#: The back-end common to every preset, in Figure 7 order.
BACKEND_PASSES: Tuple[str, ...] = ("select", "cascade", "place", "codegen")

#: preset name -> pass names, in execution order.
PIPELINE_PRESETS: Dict[str, Tuple[str, ...]] = {
    # The pre-refactor default pipeline.
    "default": BACKEND_PASSES,
    # Every stage, front end included (--opt --vectorize equivalent).
    "full": ("optimize", "vectorize") + BACKEND_PASSES,
    # IR cleanup first (the --opt flag).
    "opt": ("optimize",) + BACKEND_PASSES,
    # Auto-vectorization first (the --vectorize flag).
    "vectorized": ("vectorize",) + BACKEND_PASSES,
    # Skip the cascading rewrite entirely (not even an identity pass).
    "no-cascade": ("select", "place", "codegen"),
}

#: Pipeline spec: preset name, "a,b,c" string, or a sequence of
#: names / Pass instances.
PipelineSpec = Union[str, Sequence[Union[str, Pass]]]


def resolve_pipeline(spec: PipelineSpec = "default") -> Tuple[Pass, ...]:
    """Turn a pipeline spec into fresh pass instances.

    Raises :class:`~repro.errors.ReticleError` naming the known passes
    and presets when the spec mentions an unknown name.
    """
    if isinstance(spec, str):
        if spec in PIPELINE_PRESETS:
            names: Sequence[Union[str, Pass]] = PIPELINE_PRESETS[spec]
        else:
            names = [part.strip() for part in spec.split(",") if part.strip()]
            if not names:
                raise ReticleError(f"empty pipeline spec: {spec!r}")
    else:
        names = spec
    passes: List[Pass] = []
    for entry in names:
        if isinstance(entry, str):
            factory = PASS_REGISTRY.get(entry)
            if factory is None:
                known = ", ".join(sorted(PASS_REGISTRY))
                presets = ", ".join(sorted(PIPELINE_PRESETS))
                raise ReticleError(
                    f"unknown pass {entry!r} (passes: {known}; "
                    f"presets: {presets})"
                )
            passes.append(factory())
        else:
            passes.append(entry)
    return tuple(passes)


def pipeline_names(spec: PipelineSpec = "default") -> Tuple[str, ...]:
    """The pass names a spec resolves to (cache-key material)."""
    return tuple(p.name for p in resolve_pipeline(spec))
