"""The pass-manager spine: artifact, context, protocol, driver.

The compile pipeline (paper Figure 7) is a sequence of *passes*, each
transforming one :class:`CompileArtifact` under one
:class:`CompileContext`.  The :class:`PassManager` is the only place
that knows how a pipeline executes: it opens the root ``compile`` span,
wraps every pass in its own child span, and records per-pass wall-clock
seconds into ``ctx.stats`` — so the stages themselves never touch the
tracing layer for timing (they still record their own domain counters,
``isel.*``/``place.*``/``codegen.*``).

Passes are ordinary objects satisfying the :class:`Pass` protocol::

    class MyPass:
        name = "mypass"

        def run(self, artifact: CompileArtifact, ctx: CompileContext):
            artifact.func = rewrite(artifact.func)

The built-in Figure 7 stages live in :mod:`repro.passes.stages`; the
content-addressed compile cache in :mod:`repro.passes.cache`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.errors import ReticleError
from repro.obs import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover
    from repro.asm.ast import AsmFunc
    from repro.ir.ast import Func
    from repro.isel.select import Selector
    from repro.netlist.core import Netlist
    from repro.place.device import Device
    from repro.place.placer import Placer
    from repro.tdl.ast import Target


@dataclass
class CompileArtifact:
    """The unit of work flowing through a pipeline.

    ``source`` is the pristine input function and is never reassigned
    (callers report it back to the user); ``func`` is the *current* IR,
    rewritten in place by front-end passes; ``asm`` is the current
    assembly between the back-end stages.  The named snapshots
    (``selected``/``cascaded``/``placed``/``netlist``) are what each
    stage produced, kept for the result object and the compile cache.
    """

    source: "Func"
    func: "Func"
    asm: Optional["AsmFunc"] = None
    selected: Optional["AsmFunc"] = None
    cascaded: Optional["AsmFunc"] = None
    placed: Optional["AsmFunc"] = None
    netlist: Optional["Netlist"] = None


@dataclass
class CompileContext:
    """Everything a pass may read: target, device, options, telemetry.

    ``options`` is a flat string-keyed dict (``dsp_weight``,
    ``shrink``, ``cascade``, ...) — the same dict is hashed into the
    compile-cache key, so passes must treat it as configuration, not
    scratch space.  ``stats`` receives per-pass seconds from the
    :class:`PassManager`.  ``selector``/``placer`` are optionally
    injected by a long-lived caller (:class:`repro.compiler.
    ReticleCompiler` shares one selector so the target's pattern index
    is built once); when absent they are constructed on first use from
    ``options``.
    """

    target: "Target"
    device: "Device"
    options: Dict[str, object] = field(default_factory=dict)
    tracer: object = NULL_TRACER
    stats: Dict[str, float] = field(default_factory=dict)
    selector: Optional["Selector"] = None
    placer: Optional["Placer"] = None
    #: Provenance collector (repro.obs.provenance.Lineage); stages
    #: record IR->ASM coverage, placements, and cell attribution into
    #: it when present.  None keeps provenance off entirely.
    lineage: Optional[object] = None

    def get_selector(self) -> "Selector":
        if self.selector is None:
            from repro.isel.select import DEFAULT_DSP_WEIGHT, Selector

            self.selector = Selector(
                target=self.target,
                dsp_weight=float(
                    self.options.get("dsp_weight", DEFAULT_DSP_WEIGHT)
                ),
                memo=bool(self.options.get("isel_memo", True)),
                jobs=int(self.options.get("isel_jobs", 1)),
            )
        return self.selector

    def get_placer(self) -> "Placer":
        if self.placer is None:
            from repro.place.placer import Placer

            portfolio = self.options.get("place_portfolio") or None
            self.placer = Placer(
                target=self.target,
                device=self.device,
                shrink=bool(self.options.get("shrink", True)),
                jobs=int(self.options.get("place_jobs", 1)),
                portfolio=portfolio,
                shards=int(self.options.get("place_shards", 0)),
                reuse=bool(self.options.get("place_reuse", False)),
            )
        return self.placer


class Pass:
    """Protocol (and convenient base class) for one pipeline stage.

    Subclasses set ``name`` and implement :meth:`run`; the manager
    handles spans and timing.  Any object with a ``name`` attribute
    and a ``run(artifact, ctx)`` method is accepted — inheritance is
    optional.
    """

    name: str = "?"

    def run(self, artifact: CompileArtifact, ctx: CompileContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class PassManager:
    """Executes a fixed sequence of passes over one artifact.

    The manager is the generic observability seam: one root
    ``compile`` span, one child span per pass, per-pass seconds in
    ``ctx.stats`` (insertion order = execution order, matching the
    pre-refactor ``CompileMetrics.stages`` layout).
    """

    def __init__(self, passes: Sequence[Pass]) -> None:
        if not passes:
            raise ReticleError("a pipeline needs at least one pass")
        self.passes: Tuple[Pass, ...] = tuple(passes)

    @property
    def names(self) -> Tuple[str, ...]:
        """The pass names, in execution order (cache-key material)."""
        return tuple(p.name for p in self.passes)

    def run(
        self, artifact: CompileArtifact, ctx: CompileContext
    ) -> CompileArtifact:
        """Run every pass in order; returns the (mutated) artifact."""
        with ctx.tracer.span("compile"):
            for pipeline_pass in self.passes:
                with ctx.tracer.span(pipeline_pass.name) as span:
                    pipeline_pass.run(artifact, ctx)
                ctx.stats[pipeline_pass.name] = span.seconds
                # Also fold each pass's seconds into a per-stage
                # histogram: a long-lived tracer (the compile daemon's)
                # accumulates a latency *distribution* per stage across
                # many compiles, where ctx.stats only holds this one.
                ctx.tracer.observe(
                    f"stage.{pipeline_pass.name}", span.seconds
                )
        return artifact

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PassManager({', '.join(self.names)})"
