"""Two's-complement bit-vector helpers.

All hardware values in this package are carried as *unsigned bit
patterns* (Python ints in ``[0, 2**width)``); these helpers convert
between patterns and signed interpretations and implement the packing
used by vector types and SIMD DSP lanes.
"""

from __future__ import annotations

from typing import List, Sequence


def bit_mask(width: int) -> int:
    """Return a mask with the low ``width`` bits set."""
    if width < 0:
        raise ValueError(f"negative width: {width}")
    return (1 << width) - 1


def truncate(value: int, width: int) -> int:
    """Wrap ``value`` to an unsigned ``width``-bit pattern."""
    return value & bit_mask(width)


def to_signed(pattern: int, width: int) -> int:
    """Interpret a ``width``-bit pattern as a two's-complement integer."""
    pattern = truncate(pattern, width)
    if width > 0 and pattern & (1 << (width - 1)):
        return pattern - (1 << width)
    return pattern


def to_unsigned(value: int, width: int) -> int:
    """Encode a (possibly negative) integer as a ``width``-bit pattern."""
    return truncate(value, width)


def sign_bit(pattern: int, width: int) -> int:
    """Return the sign bit (MSB) of a ``width``-bit pattern."""
    if width == 0:
        return 0
    return (truncate(pattern, width) >> (width - 1)) & 1


def pack_lanes(lanes: Sequence[int], lane_width: int) -> int:
    """Pack lane patterns into one wide pattern, lane 0 in the low bits."""
    packed = 0
    for index, lane in enumerate(lanes):
        packed |= truncate(lane, lane_width) << (index * lane_width)
    return packed


def unpack_lanes(pattern: int, lane_width: int, lanes: int) -> List[int]:
    """Split a wide pattern into ``lanes`` patterns of ``lane_width`` bits."""
    return [
        truncate(pattern >> (index * lane_width), lane_width)
        for index in range(lanes)
    ]


def bit_select(pattern: int, hi: int, lo: int) -> int:
    """Extract bits ``hi..lo`` (inclusive, hi >= lo) from a pattern."""
    if hi < lo:
        raise ValueError(f"bit_select with hi < lo: [{hi}:{lo}]")
    return (pattern >> lo) & bit_mask(hi - lo + 1)


def bit_concat(parts: Sequence[int], widths: Sequence[int]) -> int:
    """Concatenate patterns; ``parts[0]`` occupies the low bits."""
    if len(parts) != len(widths):
        raise ValueError("bit_concat: parts and widths differ in length")
    result = 0
    offset = 0
    for part, width in zip(parts, widths):
        result |= truncate(part, width) << offset
        offset += width
    return result
