"""One authority for sizing worker pools.

Every parallel surface in the repo — ``compile_prog --jobs``, the
conformance matrix, the loadgen, the daemon's executor — needs the
same decision: how many workers should ``jobs`` really mean?  Before
this module each call site clamped and defaulted on its own; now the
policy lives in one place so the ``--executor`` flag has a single
plumbing point.

Resolution order for :func:`resolve_jobs`:

1. an explicit positive ``jobs`` wins verbatim;
2. ``jobs`` of ``0``/``None`` means *auto*: the ``RETICLE_JOBS``
   environment override if set, else the usable CPU count;
3. the result is clamped to ``items`` when the caller knows how much
   independent work exists (a 2-function program never needs 8
   workers).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import ReticleError

# Environment override for auto-sized pools.  Operators use this to
# pin daemon and batch parallelism fleet-wide without touching every
# invocation.
JOBS_ENV = "RETICLE_JOBS"

# The two execution tiers compile fan-out can run on.  ``thread`` is
# the default everywhere and preserves historical behavior
# byte-for-byte; ``process`` ships work to the persistent worker
# processes in :mod:`repro.serve.procpool`.
EXECUTOR_CHOICES = ("thread", "process")


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def resolve_jobs(
    jobs: Optional[int] = None,
    items: Optional[int] = None,
    env: Optional[str] = JOBS_ENV,
) -> int:
    """Turn a ``--jobs`` value into a concrete worker count (>= 1)."""
    count: Optional[int] = jobs
    if count is None or count == 0:
        raw = os.environ.get(env, "") if env else ""
        if raw.strip():
            try:
                count = int(raw)
            except ValueError:
                raise ReticleError(
                    f"{env} must be an integer, got {raw!r}"
                ) from None
            if count < 1:
                raise ReticleError(f"{env} must be >= 1, got {count}")
        else:
            count = usable_cpus()
    if count < 1:
        raise ReticleError(f"jobs must be >= 1, got {count}")
    if items is not None:
        count = min(count, max(1, items))
    return count


def resolve_executor(executor: Optional[str]) -> str:
    """Validate an ``--executor`` choice, defaulting to ``thread``."""
    name = (executor or "thread").strip().lower()
    if name not in EXECUTOR_CHOICES:
        choices = ", ".join(EXECUTOR_CHOICES)
        raise ReticleError(
            f"unknown executor {executor!r} (choose from: {choices})"
        )
    return name
