"""Fresh-name generation for compiler passes."""

from __future__ import annotations

from typing import Iterable, Set


class NameGenerator:
    """Produces identifiers guaranteed not to collide with a taken set.

    Compiler passes that introduce temporaries (instruction selection,
    cascading, behavioral emission) share this so generated programs
    never shadow user variables.
    """

    def __init__(self, taken: Iterable[str] = (), prefix: str = "_t") -> None:
        self._taken: Set[str] = set(taken)
        self._prefix = prefix
        self._counter = 0

    def fresh(self, hint: str = "") -> str:
        """Return a new unique name, optionally derived from ``hint``."""
        base = hint if hint else self._prefix
        while True:
            candidate = f"{base}{self._counter}"
            self._counter += 1
            if candidate not in self._taken:
                self._taken.add(candidate)
                return candidate

    def reserve(self, name: str) -> None:
        """Mark ``name`` as taken."""
        self._taken.add(name)
