"""Small shared utilities: bit manipulation and identifier generation."""

from repro.utils.bits import (
    bit_mask,
    truncate,
    to_signed,
    to_unsigned,
    sign_bit,
    pack_lanes,
    unpack_lanes,
    bit_select,
    bit_concat,
)
from repro.utils.names import NameGenerator

__all__ = [
    "bit_mask",
    "truncate",
    "to_signed",
    "to_unsigned",
    "sign_bit",
    "pack_lanes",
    "unpack_lanes",
    "bit_select",
    "bit_concat",
    "NameGenerator",
]
