"""The end-to-end Reticle compiler (paper Figure 7).

Since the pass-manager refactor this module is a thin facade over
:mod:`repro.passes`: the pipeline is a :class:`~repro.passes.
PassManager` built from a spec (a preset name like ``"default"`` /
``"full"``, a comma-separated pass list, or explicit pass objects),
executed over a :class:`~repro.passes.CompileArtifact` under a
:class:`~repro.passes.CompileContext`.  The manager emits the
:mod:`repro.obs` spans generically — one root ``compile`` span, one
child per pass — so the per-stage story (Figure 13) comes for free for
any pipeline.

Two scaling features ride on that spine:

* a **content-addressed compile cache** (``cache=CompileCache(...)``
  or ``cache_dir="..."``): compiles are memoized under a SHA-256 of
  the canonical IR text, target/device names, pipeline, and options,
  with ``cache.*`` counters reported through the tracer;
* **parallel whole-program compilation** (``compile_prog(prog,
  jobs=N)``): the functions of a multi-function program are
  independent, so they fan out over a thread pool, each worker
  recording into a private tracer that is merged into the shared one.

Every compile produces a :class:`CompileMetrics` (per-stage durations
plus the counters and gauges recorded by the selector, placer, and
code generator) and keeps the full :class:`~repro.obs.Tracer` on the
result for structured export (Chrome ``trace_event`` JSON or a text
table via :func:`repro.obs.format_profile`).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.ast import Prog

from repro.asm.ast import AsmFunc
from repro.codegen.verilog_emit import emit_verilog_chunks
from repro.errors import ReticleError, TargetError
from repro.isel.select import DEFAULT_DSP_WEIGHT, Selector
from repro.ir.ast import Func
from repro.netlist.core import Netlist
from repro.obs import Lineage, Tracer
from repro.passes import (
    CachedCompile,
    CompileArtifact,
    CompileCache,
    CompileContext,
    PassManager,
    cache_key,
    resolve_pipeline,
)
from repro.passes.stages import PipelineSpec
from repro.place.device import Device, xczu3eg
from repro.place.placer import Placer
from repro.place.solver import PortfolioSpec, resolve_portfolio
from repro.tdl.ast import Target
from repro.tdl.ultrascale import ultrascale_target
from repro.utils.pool import resolve_executor, resolve_jobs

def _load_ultrascale() -> "tuple[Target, Device]":
    return ultrascale_target(), xczu3eg()


def _load_ecp5() -> "tuple[Target, Device]":
    from repro.place.device import lfe5u85
    from repro.tdl.ecp5 import ecp5_target

    return ecp5_target(), lfe5u85()


def _load_ice40() -> "tuple[Target, Device]":
    from repro.place.device import ice40up5k
    from repro.tdl.ice40 import ice40_target

    return ice40_target(), ice40up5k()


#: Registered target families, name -> loader of (target, device).
#: Insertion order is the canonical fan-out order everywhere a
#: multi-target compile iterates "all targets", so reports, traces,
#: and conformance matrices list targets identically.
_TARGET_REGISTRY = {
    "ultrascale": _load_ultrascale,
    "ecp5": _load_ecp5,
    "ice40": _load_ice40,
}


def registered_targets() -> "tuple[str, ...]":
    """Every registered target name, in canonical (registry) order."""
    return tuple(_TARGET_REGISTRY)


def resolve_target(name: str) -> "tuple[Target, Device]":
    """The (target, device) pair for a registered target name.

    The single authority used by the CLI and the compile daemon, so a
    request served by ``reticle serve`` builds exactly the compiler
    ``reticle compile --target NAME`` would — a prerequisite for the
    shared cache tier (same key recipe) and for byte-identical output
    across the two front ends.  Unknown names raise a typed
    :class:`~repro.errors.TargetError` naming every registered target,
    so both the CLI and the daemon's request-validation (400) path
    report the same actionable message.
    """
    loader = _TARGET_REGISTRY.get(name)
    if loader is None:
        registered = ", ".join(repr(known) for known in _TARGET_REGISTRY)
        raise TargetError(
            f"unknown target {name!r} (registered targets: {registered})"
        )
    return loader()


def resolve_target_names(names: Sequence[str]) -> "tuple[str, ...]":
    """Expand/validate a target-name list for a multi-target compile.

    ``"all"`` (alone or among names) expands to every registered
    target; explicit names are validated eagerly via
    :func:`resolve_target` and deduplicated into canonical registry
    order, so a fan-out never starts compiling before a typo in the
    *last* target name is diagnosed.
    """
    if any(name == "all" for name in names):
        return registered_targets()
    for name in names:
        resolve_target(name)
    seen = {name: None for name in names}
    return tuple(
        name for name in registered_targets() if name in seen
    )


#: The pipeline stages of one compile, in execution order.  The
#: optional front-end stages only appear when their flag is set.
PIPELINE_STAGES = (
    "optimize",
    "vectorize",
    "select",
    "cascade",
    "place",
    "codegen",
)


@dataclass(frozen=True)
class CompileMetrics:
    """Telemetry of one compile: stage timings, counters, gauges.

    ``stages`` maps stage name to seconds, in pipeline order; it only
    holds stages that actually ran (a cache hit reports a single
    ``cache`` pseudo-stage).  ``counters`` and ``gauges`` are whatever
    the instrumented stages recorded (``isel.*``, ``place.*``,
    ``codegen.*``, ``cache.*``).
    """

    stages: Dict[str, float]
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """The sum of stage durations (excludes import overhead)."""
        return sum(self.stages.values())


@dataclass
class ReticleResult:
    """The output of one compile: every intermediate plus telemetry.

    ``source`` is the *pristine* input function — front-end passes
    (optimize/vectorize) rewrite a private copy, never what is
    reported back.  ``seconds`` is the sum of the stage spans —
    module-import cost of the optional front-end passes is
    deliberately excluded, so first and repeat compiles report
    comparable timings.  ``cached`` is True when the artifacts came
    out of the compile cache rather than a pipeline run.
    """

    source: Func
    selected: AsmFunc
    cascaded: AsmFunc
    placed: AsmFunc
    netlist: Netlist
    seconds: float
    metrics: Optional[CompileMetrics] = None
    trace: Optional[Tracer] = None
    cached: bool = False
    lineage: Optional[Lineage] = None

    def verilog(self) -> str:
        """The final structural Verilog with layout annotations."""
        return "".join(self.verilog_chunks())

    def verilog_chunks(self, chunk_lines: Optional[int] = None):
        """Stream the Verilog as text chunks (O(chunk) memory).

        Joining the chunks yields exactly :meth:`verilog`; each chunk
        bumps ``codegen.chunks`` on the result's tracer, so chunked
        emission shows up in the compile telemetry.
        """
        kwargs = {} if chunk_lines is None else {"chunk_lines": chunk_lines}
        if self.trace is not None:
            kwargs["tracer"] = self.trace
        return emit_verilog_chunks(self.netlist, **kwargs)

    def report(self):
        """The :class:`~repro.obs.report.CompileReport` of this compile.

        Joins the lineage table (IR op -> ASM instr -> location ->
        cells), resource utilization, the placement heatmap, the
        per-tree isel cost breakdown, and the event log into one
        machine- and human-renderable artifact.
        """
        from repro.obs.report import build_report

        return build_report(self)


class ReticleCompiler:
    """Reusable compiler facade for one target/device pair.

    The boolean knobs (``optimize``/``auto_vectorize``/``cascade``)
    are kept for API compatibility and map onto a pipeline spec;
    ``passes`` overrides them with an explicit spec.  One
    :class:`~repro.isel.select.Selector` (pattern index built once)
    and one :class:`~repro.place.placer.Placer` are shared across
    compiles — both are stateless per compile, so they are safe under
    concurrent ``compile_prog`` workers.
    """

    def __init__(
        self,
        target: Optional[Target] = None,
        device: Optional[Device] = None,
        dsp_weight: float = DEFAULT_DSP_WEIGHT,
        shrink: bool = True,
        cascade: bool = True,
        optimize: bool = False,
        auto_vectorize: bool = False,
        passes: Optional[PipelineSpec] = None,
        cache: Optional[CompileCache] = None,
        cache_dir: Optional[str] = None,
        jobs: int = 1,
        place_jobs: int = 1,
        place_portfolio: Optional[PortfolioSpec] = None,
        place_shards: int = 0,
        place_reuse: bool = False,
        isel_jobs: int = 1,
        isel_memo: bool = True,
        executor: str = "thread",
    ) -> None:
        self.target = target if target is not None else ultrascale_target()
        self.device = device if device is not None else xczu3eg()
        self.selector = Selector(
            target=self.target,
            dsp_weight=dsp_weight,
            memo=isel_memo,
            jobs=isel_jobs,
        )
        # The portfolio is canonicalized to strategy *names* before it
        # enters the options dict: the dict is cache-key material and
        # must stay JSON-serializable, and two spellings of the same
        # portfolio ("throughput" vs its expansion) must hash alike.
        portfolio_names = [
            strategy.name for strategy in resolve_portfolio(place_portfolio)
        ]
        self.placer = Placer(
            target=self.target,
            device=self.device,
            shrink=shrink,
            jobs=place_jobs,
            portfolio=portfolio_names or None,
            shards=place_shards,
            reuse=place_reuse,
        )
        self.cascade = cascade
        self.optimize = optimize
        self.auto_vectorize = auto_vectorize
        self.options: Dict[str, object] = {
            "dsp_weight": dsp_weight,
            "shrink": shrink,
            "cascade": cascade,
            "place_jobs": place_jobs,
            "place_portfolio": portfolio_names,
            # place_shards changes *which* feasible placement comes
            # out; place_reuse additionally makes it depend on the
            # placer's history.  Both are therefore cache-key material.
            "place_shards": place_shards,
            "place_reuse": place_reuse,
            "isel_jobs": isel_jobs,
            "isel_memo": isel_memo,
        }
        if passes is None:
            names = []
            if optimize:
                names.append("optimize")
            if auto_vectorize:
                names.append("vectorize")
            names.extend(("select", "cascade", "place", "codegen"))
            passes = names
        self.pass_manager = PassManager(resolve_pipeline(passes))
        if cache is None and cache_dir is not None:
            cache = CompileCache(cache_dir=cache_dir)
        self.cache = cache
        if place_reuse and cache is not None and cache.cache_dir:
            # Persist reuse banks next to the compile cache so daemon
            # worker processes (and later CLI runs) share them.  Set
            # before the first place(): the memo is built lazily.
            self.placer.reuse_dir = os.path.join(
                cache.cache_dir, "place-reuse"
            )
        self.jobs = jobs
        # The execution tier for multi-function fan-out.  Not part of
        # ``options``: the executor changes where functions compile,
        # never what they compile to, so it must not shift cache keys.
        self.executor = resolve_executor(executor)

    # -- caching -----------------------------------------------------

    def cache_key(self, func: Func) -> str:
        """The content address of compiling ``func`` with this config."""
        return cache_key(
            func,
            target_name=self.target.name,
            device_name=self.device.name,
            pipeline=self.pass_manager.names,
            options=self.options,
        )

    def _result_from_cache(
        self,
        func: Func,
        entry: CachedCompile,
        seconds: float,
        trace: Tracer,
    ) -> ReticleResult:
        metrics = CompileMetrics(
            stages={"cache": seconds},
            counters=trace.counters,
            gauges=trace.gauges,
        )
        return ReticleResult(
            source=func,
            selected=entry.selected,
            cascaded=entry.cascaded,
            placed=entry.placed,
            netlist=entry.netlist,
            seconds=metrics.total_seconds,
            metrics=metrics,
            trace=trace,
            cached=True,
            # Pre-provenance disk entries lack the field entirely.
            lineage=getattr(entry, "lineage", None),
        )

    # -- compiling ---------------------------------------------------

    def compile(
        self, func: Func, tracer: Optional[Tracer] = None
    ) -> ReticleResult:
        """Run the pipeline on one IR function (or hit the cache).

        ``tracer`` lets callers aggregate several compiles into one
        trace; by default each compile gets a fresh
        :class:`~repro.obs.Tracer` whose snapshot becomes
        ``result.metrics``.
        """
        trace = Tracer() if tracer is None else tracer
        key = None
        if self.cache is not None:
            key = self.cache_key(func)
            start = time.perf_counter()
            entry = self.cache.get(key, tracer=trace)
            if entry is not None:
                seconds = time.perf_counter() - start
                return self._result_from_cache(func, entry, seconds, trace)

        lineage = Lineage()
        ctx = CompileContext(
            target=self.target,
            device=self.device,
            options=dict(self.options),
            tracer=trace,
            selector=self.selector,
            placer=self.placer,
            lineage=lineage,
        )
        artifact = self.pass_manager.run(
            CompileArtifact(source=func, func=func), ctx
        )
        if artifact.netlist is None:
            raise ReticleError(
                "pipeline did not produce a netlist (passes: "
                + ", ".join(self.pass_manager.names)
                + ")"
            )
        selected = (
            artifact.selected if artifact.selected is not None else artifact.asm
        )
        cascaded = (
            artifact.cascaded if artifact.cascaded is not None else selected
        )
        placed = artifact.placed if artifact.placed is not None else cascaded
        if key is not None:
            self.cache.put(
                key,
                CachedCompile(
                    selected=selected,
                    cascaded=cascaded,
                    placed=placed,
                    netlist=artifact.netlist,
                    stages=dict(ctx.stats),
                    lineage=lineage,
                ),
                tracer=trace,
            )
        metrics = CompileMetrics(
            stages=ctx.stats,
            counters=trace.counters,
            gauges=trace.gauges,
        )
        return ReticleResult(
            source=artifact.source,
            selected=selected,
            cascaded=cascaded,
            placed=placed,
            netlist=artifact.netlist,
            seconds=metrics.total_seconds,
            metrics=metrics,
            trace=trace,
            lineage=lineage,
        )

    # -- process-executor wire format -------------------------------

    def _ensure_wire_config(self) -> None:
        """Check this configuration can ship to a worker by name.

        Workers rebuild the compiler from the wire task, resolving the
        target *name* through the registry; a custom target or a
        non-registry device would silently compile for a different
        fabric, so both are rejected up front.  Checked once per
        compiler (the registry loaders re-parse TDL on every call).
        """
        if self.__dict__.get("_wire_checked"):
            return
        target, device = resolve_target(self.target.name)
        if device.name != self.device.name:
            raise TargetError(
                "process executor requires the registered device for "
                f"target {self.target.name!r} ({device.name!r}), got "
                f"{self.device.name!r}"
            )
        self.__dict__["_wire_checked"] = True

    def _wire_options(self) -> "tuple":
        """The compiler options as a hashable, picklable tuple."""
        return tuple(
            sorted(
                (
                    name,
                    tuple(value) if isinstance(value, list) else value,
                )
                for name, value in self.options.items()
            )
        )

    def wire_task(
        self,
        func: Func,
        trace_id: Optional[str] = None,
        poison: bool = False,
    ):
        """One function compile as a :class:`~repro.serve.procpool.FuncTask`.

        The function travels as its canonical printing (explicit
        result types), which round-trips through the parser to
        byte-identical Verilog; the digest lets a warm worker skip the
        parse entirely.
        """
        from repro.ir.printer import print_func
        from repro.serve.procpool import FuncTask, ir_digest

        self._ensure_wire_config()
        ir = print_func(func, explicit_res=True)
        return FuncTask(
            digest=ir_digest(ir),
            ir=ir,
            target=self.target.name,
            pipeline=tuple(self.pass_manager.names),
            options=self._wire_options(),
            cache_dir=self.cache.cache_dir if self.cache else None,
            use_cache=self.cache is not None,
            trace_id=trace_id,
            poison=poison,
        )

    def _result_from_wire(self, func: Func, wire) -> ReticleResult:
        """A :class:`ReticleResult` from a worker's shipped artifacts."""
        trace = wire.tracer
        payload = wire.payload
        metrics = CompileMetrics(
            stages=dict(payload.stages),
            counters=trace.counters,
            gauges=trace.gauges,
        )
        return ReticleResult(
            source=func,
            selected=payload.selected,
            cascaded=payload.cascaded,
            placed=payload.placed,
            netlist=payload.netlist,
            seconds=metrics.total_seconds,
            metrics=metrics,
            trace=trace,
            cached=payload.cached,
            lineage=payload.lineage,
        )

    def _compile_prog_process(
        self,
        funcs: "list[Func]",
        tracer: Optional[Tracer],
        jobs: Optional[int],
        pool,
    ) -> Dict[str, ReticleResult]:
        """Fan the functions out over worker processes."""
        from repro.serve.procpool import ProcessCompilePool

        worker_trace_id = tracer.trace_id if tracer is not None else None
        owned = pool is None
        if owned:
            pool = ProcessCompilePool(
                workers=resolve_jobs(jobs, items=len(funcs)),
                tracer=tracer,
            )
        try:
            futures = [
                pool.submit(self.wire_task(func, trace_id=worker_trace_id))
                for func in funcs
            ]
            wires = [future.result() for future in futures]
        finally:
            if owned:
                pool.shutdown(wait=True)
        results: Dict[str, ReticleResult] = {}
        for func, wire in zip(funcs, wires):
            result = self._result_from_wire(func, wire)
            if tracer is not None and result.trace is not None:
                tracer.merge(result.trace)
            results[func.name] = result
        return results

    def compile_prog(
        self,
        prog: "Prog",
        tracer: Optional[Tracer] = None,
        jobs: Optional[int] = None,
        executor: Optional[str] = None,
        pool=None,
    ) -> Dict[str, ReticleResult]:
        """Compile every function of a program; keyed by name.

        With an explicit ``tracer`` all functions share one trace
        (counters accumulate); otherwise each gets its own.  With
        ``jobs > 1`` functions compile concurrently — they are
        independent — and each worker's private tracer is merged into
        the shared one (definition order, so merged telemetry is
        deterministic).  ``jobs=0`` means auto
        (:func:`repro.utils.pool.resolve_jobs`).

        ``executor`` picks the tier (default: the compiler's own,
        normally ``thread``): threads share this compiler in-process;
        ``"process"`` ships each function to the persistent worker
        processes of :mod:`repro.serve.procpool` — an existing
        :class:`~repro.serve.procpool.ProcessCompilePool` can be
        passed as ``pool``, otherwise one is booted and drained per
        call.  Results are identical to a serial compile under either
        tier: the selector's pattern index is read-only, the placer
        keeps no per-compile state, and the wire format round-trips
        the IR canonically (pinned by tests).
        """
        jobs = self.jobs if jobs is None else jobs
        funcs = list(prog)
        executor = resolve_executor(
            self.executor if executor is None else executor
        )
        if executor == "process" and funcs and (pool is not None or jobs != 1):
            return self._compile_prog_process(funcs, tracer, jobs, pool)
        if jobs == 0:
            jobs = resolve_jobs(0, items=len(funcs))
        if jobs <= 1 or len(funcs) <= 1:
            return {
                func.name: self.compile(func, tracer=tracer)
                for func in funcs
            }
        # Worker tracers inherit the shared tracer's request identity,
        # so every span of a parallel compile still names its request.
        worker_trace_id = tracer.trace_id if tracer is not None else None
        with ThreadPoolExecutor(max_workers=jobs) as threads:
            futures = [
                threads.submit(
                    self.compile, func, Tracer(trace_id=worker_trace_id)
                )
                for func in funcs
            ]
            compiled = [future.result() for future in futures]
        results: Dict[str, ReticleResult] = {}
        for func, result in zip(funcs, compiled):
            if tracer is not None and result.trace is not None:
                tracer.merge(result.trace)
            results[func.name] = result
        return results


def compile_func(
    func: Func, tracer: Optional[Tracer] = None, **kwargs
) -> ReticleResult:
    """One-shot compilation with default target and device."""
    return ReticleCompiler(**kwargs).compile(func, tracer=tracer)


def compile_prog(
    prog: "Prog",
    tracer: Optional[Tracer] = None,
    jobs: Optional[int] = None,
    targets: Optional[Sequence[str]] = None,
    pool=None,
    **kwargs,
) -> Dict[str, object]:
    """One-shot compilation of a whole program.

    With ``targets`` (a list of registered target names, or ``"all"``)
    the program fans out to every named target — see
    :func:`compile_prog_multi` — and the result is nested per target.
    ``executor="process"`` (a compiler kwarg) ships the functions to
    worker processes; ``pool`` reuses an existing
    :class:`~repro.serve.procpool.ProcessCompilePool`.
    """
    if targets is not None:
        return compile_prog_multi(
            prog, targets, tracer=tracer, jobs=jobs, pool=pool, **kwargs
        )
    return ReticleCompiler(**kwargs).compile_prog(
        prog, tracer=tracer, jobs=jobs, pool=pool
    )


def compile_prog_multi(
    prog: "Prog",
    targets: Sequence[str],
    tracer: Optional[Tracer] = None,
    jobs: Optional[int] = None,
    pool=None,
    **kwargs,
) -> "Dict[str, Dict[str, ReticleResult]]":
    """Compile one program to several targets; nested by target name.

    One compiler is built per target (so each fan-out leg has its own
    pattern index, placer, compile-cache keys, and provenance) and
    every ``(target, function)`` pair is an independent unit of work on
    a single shared pool of ``jobs`` workers — a three-target
    compile of a two-function program saturates six workers, not
    three.  Each unit compiles under a private tracer; with an
    explicit ``tracer`` the private traces are merged back in
    canonical (registry, then program) order, so aggregated telemetry
    is deterministic regardless of completion order.  Per-target
    output is byte-identical to a serial single-target compile of the
    same program: compilers share nothing but the (read-only) IR.

    ``executor="process"`` (a compiler kwarg) runs every pair on the
    persistent worker processes instead of threads, with identical
    per-target output and the same canonical merge order.
    """
    names = resolve_target_names(tuple(targets))
    if not names:
        raise TargetError("multi-target compile requires at least one target")
    compilers: Dict[str, ReticleCompiler] = {}
    for name in names:
        target, device = resolve_target(name)
        compilers[name] = ReticleCompiler(
            target=target, device=device, **kwargs
        )
    funcs = list(prog)
    pairs = [(name, func) for name in names for func in funcs]
    worker_trace_id = tracer.trace_id if tracer is not None else None

    def compile_one(name: str, func: Func) -> ReticleResult:
        return compilers[name].compile(
            func, tracer=Tracer(trace_id=worker_trace_id)
        )

    executor = resolve_executor(kwargs.get("executor"))
    jobs = 1 if jobs is None else jobs
    use_process = executor == "process" and bool(pairs) and (
        pool is not None or jobs != 1
    )
    if jobs == 0:
        jobs = resolve_jobs(0, items=len(pairs))
    if use_process:
        from repro.serve.procpool import ProcessCompilePool

        owned = pool is None
        if owned:
            pool = ProcessCompilePool(
                workers=resolve_jobs(jobs, items=len(pairs)),
                tracer=tracer,
            )
        try:
            futures = [
                pool.submit(
                    compilers[name].wire_task(
                        func, trace_id=worker_trace_id
                    )
                )
                for name, func in pairs
            ]
            compiled = [
                compilers[name]._result_from_wire(func, future.result())
                for (name, func), future in zip(pairs, futures)
            ]
        finally:
            if owned:
                pool.shutdown(wait=True)
    elif jobs <= 1 or len(pairs) <= 1:
        compiled = [compile_one(name, func) for name, func in pairs]
    else:
        with ThreadPoolExecutor(max_workers=jobs) as threads:
            futures = [
                threads.submit(compile_one, name, func)
                for name, func in pairs
            ]
            compiled = [future.result() for future in futures]
    results: Dict[str, Dict[str, ReticleResult]] = {
        name: {} for name in names
    }
    for (name, func), result in zip(pairs, compiled):
        if tracer is not None and result.trace is not None:
            tracer.merge(result.trace)
        results[name][func.name] = result
    return results
