"""The end-to-end Reticle compiler (paper Figure 7).

Chains the pipeline stages — instruction selection, layout
optimization (cascading), instruction placement, and code generation —
and reports wall-clock compile time, so the benchmark harness can
score it against the vendor-toolchain simulator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.ast import Prog

from repro.asm.ast import AsmFunc
from repro.codegen.generate import generate_netlist
from repro.codegen.verilog_emit import generate_verilog
from repro.isel.select import DEFAULT_DSP_WEIGHT, Selector
from repro.ir.ast import Func
from repro.layout.cascade import apply_cascading
from repro.netlist.core import Netlist
from repro.place.device import Device, xczu3eg
from repro.place.placer import Placer
from repro.tdl.ast import Target
from repro.tdl.ultrascale import ultrascale_target


@dataclass
class ReticleResult:
    """The output of one compile: every intermediate plus timing."""

    source: Func
    selected: AsmFunc
    cascaded: AsmFunc
    placed: AsmFunc
    netlist: Netlist
    seconds: float

    def verilog(self) -> str:
        """The final structural Verilog with layout annotations."""
        return generate_verilog(self.netlist)


class ReticleCompiler:
    """Reusable compiler for one target/device pair."""

    def __init__(
        self,
        target: Optional[Target] = None,
        device: Optional[Device] = None,
        dsp_weight: float = DEFAULT_DSP_WEIGHT,
        shrink: bool = True,
        cascade: bool = True,
        optimize: bool = False,
        auto_vectorize: bool = False,
    ) -> None:
        self.target = target if target is not None else ultrascale_target()
        self.device = device if device is not None else xczu3eg()
        self.selector = Selector(target=self.target, dsp_weight=dsp_weight)
        self.placer = Placer(
            target=self.target, device=self.device, shrink=shrink
        )
        self.cascade = cascade
        self.optimize = optimize
        self.auto_vectorize = auto_vectorize

    def compile(self, func: Func) -> ReticleResult:
        """Run the full pipeline on one IR function."""
        start = time.perf_counter()
        if self.optimize:
            from repro.ir.optimize import optimize_func

            func = optimize_func(func)
        if self.auto_vectorize:
            from repro.ir.vectorize import vectorize_func

            func = vectorize_func(func).func
        selected = self.selector.select(func)
        cascaded = (
            apply_cascading(selected, self.target) if self.cascade else selected
        )
        placed = self.placer.place(cascaded)
        netlist = generate_netlist(placed, self.target)
        seconds = time.perf_counter() - start
        return ReticleResult(
            source=func,
            selected=selected,
            cascaded=cascaded,
            placed=placed,
            netlist=netlist,
            seconds=seconds,
        )


    def compile_prog(self, prog: "Prog") -> Dict[str, ReticleResult]:
        """Compile every function of a program; keyed by name."""
        return {func.name: self.compile(func) for func in prog}


def compile_func(func: Func, **kwargs) -> ReticleResult:
    """One-shot compilation with default target and device."""
    return ReticleCompiler(**kwargs).compile(func)


def compile_prog(prog: "Prog", **kwargs) -> Dict[str, ReticleResult]:
    """One-shot compilation of a whole program."""
    return ReticleCompiler(**kwargs).compile_prog(prog)
