"""The end-to-end Reticle compiler (paper Figure 7).

Chains the pipeline stages — instruction selection, layout
optimization (cascading), instruction placement, and code generation —
and measures each one through the :mod:`repro.obs` tracing layer, so
the benchmark harness can score compile time per stage against the
vendor-toolchain simulator.

Every compile produces a :class:`CompileMetrics` (per-stage durations
plus the counters and gauges recorded by the selector, placer, and
code generator) and keeps the full :class:`~repro.obs.Tracer` on the
result for structured export (Chrome ``trace_event`` JSON or a text
table via :func:`repro.obs.format_profile`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.ast import Prog

from repro.asm.ast import AsmFunc
from repro.codegen.generate import generate_netlist
from repro.codegen.verilog_emit import generate_verilog
from repro.isel.select import DEFAULT_DSP_WEIGHT, Selector
from repro.ir.ast import Func
from repro.layout.cascade import apply_cascading
from repro.netlist.core import Netlist
from repro.obs import Tracer
from repro.place.device import Device, xczu3eg
from repro.place.placer import Placer
from repro.tdl.ast import Target
from repro.tdl.ultrascale import ultrascale_target

#: The pipeline stages of one compile, in execution order.  The
#: optional front-end stages only appear when their flag is set.
PIPELINE_STAGES = (
    "optimize",
    "vectorize",
    "select",
    "cascade",
    "place",
    "codegen",
)


@dataclass(frozen=True)
class CompileMetrics:
    """Telemetry of one compile: stage timings, counters, gauges.

    ``stages`` maps stage name to seconds, in pipeline order; it only
    holds stages that actually ran.  ``counters`` and ``gauges`` are
    whatever the instrumented stages recorded (``isel.*``,
    ``place.*``, ``codegen.*``).
    """

    stages: Dict[str, float]
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """The sum of stage durations (excludes import overhead)."""
        return sum(self.stages.values())


@dataclass
class ReticleResult:
    """The output of one compile: every intermediate plus telemetry.

    ``seconds`` is the sum of the stage spans — module-import cost of
    the optional front-end passes is deliberately excluded, so first
    and repeat compiles report comparable timings.
    """

    source: Func
    selected: AsmFunc
    cascaded: AsmFunc
    placed: AsmFunc
    netlist: Netlist
    seconds: float
    metrics: Optional[CompileMetrics] = None
    trace: Optional[Tracer] = None

    def verilog(self) -> str:
        """The final structural Verilog with layout annotations."""
        return generate_verilog(self.netlist)


class ReticleCompiler:
    """Reusable compiler for one target/device pair."""

    def __init__(
        self,
        target: Optional[Target] = None,
        device: Optional[Device] = None,
        dsp_weight: float = DEFAULT_DSP_WEIGHT,
        shrink: bool = True,
        cascade: bool = True,
        optimize: bool = False,
        auto_vectorize: bool = False,
    ) -> None:
        self.target = target if target is not None else ultrascale_target()
        self.device = device if device is not None else xczu3eg()
        self.selector = Selector(target=self.target, dsp_weight=dsp_weight)
        self.placer = Placer(
            target=self.target, device=self.device, shrink=shrink
        )
        self.cascade = cascade
        self.optimize = optimize
        self.auto_vectorize = auto_vectorize

    def compile(
        self, func: Func, tracer: Optional[Tracer] = None
    ) -> ReticleResult:
        """Run the full pipeline on one IR function.

        ``tracer`` lets callers aggregate several compiles into one
        trace; by default each compile gets a fresh
        :class:`~repro.obs.Tracer` whose snapshot becomes
        ``result.metrics``.
        """
        trace = Tracer() if tracer is None else tracer
        # Resolve the lazy front-end imports *before* any stage clock
        # starts: first-compile timings must not be inflated by
        # one-time module import cost.
        optimize_func = vectorize_func = None
        if self.optimize:
            from repro.ir.optimize import optimize_func
        if self.auto_vectorize:
            from repro.ir.vectorize import vectorize_func

        stages: Dict[str, float] = {}
        with trace.span("compile"):
            if optimize_func is not None:
                with trace.span("optimize") as span:
                    func = optimize_func(func)
                stages["optimize"] = span.seconds
            if vectorize_func is not None:
                with trace.span("vectorize") as span:
                    func = vectorize_func(func).func
                stages["vectorize"] = span.seconds
            with trace.span("select") as span:
                selected = self.selector.select(func, tracer=trace)
            stages["select"] = span.seconds
            with trace.span("cascade") as span:
                cascaded = (
                    apply_cascading(selected, self.target)
                    if self.cascade
                    else selected
                )
            stages["cascade"] = span.seconds
            with trace.span("place") as span:
                placed = self.placer.place(cascaded, tracer=trace)
            stages["place"] = span.seconds
            with trace.span("codegen") as span:
                netlist = generate_netlist(placed, self.target, tracer=trace)
            stages["codegen"] = span.seconds

        metrics = CompileMetrics(
            stages=stages,
            counters=trace.counters,
            gauges=trace.gauges,
        )
        return ReticleResult(
            source=func,
            selected=selected,
            cascaded=cascaded,
            placed=placed,
            netlist=netlist,
            seconds=metrics.total_seconds,
            metrics=metrics,
            trace=trace,
        )

    def compile_prog(
        self, prog: "Prog", tracer: Optional[Tracer] = None
    ) -> Dict[str, ReticleResult]:
        """Compile every function of a program; keyed by name.

        With an explicit ``tracer`` all functions share one trace
        (counters accumulate); otherwise each gets its own.
        """
        return {
            func.name: self.compile(func, tracer=tracer) for func in prog
        }


def compile_func(
    func: Func, tracer: Optional[Tracer] = None, **kwargs
) -> ReticleResult:
    """One-shot compilation with default target and device."""
    return ReticleCompiler(**kwargs).compile(func, tracer=tracer)


def compile_prog(
    prog: "Prog", tracer: Optional[Tracer] = None, **kwargs
) -> Dict[str, ReticleResult]:
    """One-shot compilation of a whole program."""
    return ReticleCompiler(**kwargs).compile_prog(prog, tracer=tracer)
