"""Benchmark program generators and behavioral-baseline emitters.

These are the "front-end tools" of the paper's Section 8: they build
Reticle IR programs for the evaluation's three benchmarks —
``tensoradd`` (vectorization), ``tensordot`` (fused operations and
cascading), and ``fsm`` (control) — plus the scalar baseline variants
the vendor toolchain consumes, and a behavioral-Verilog emitter for
inspecting what those baselines look like as HDL text.
"""

from repro.frontend.tensor import (
    tensoradd_vector,
    tensoradd_scalar,
    tensordot,
)
from repro.frontend.fsm import fsm
from repro.frontend.behavioral import emit_behavioral_verilog

__all__ = [
    "tensoradd_vector",
    "tensoradd_scalar",
    "tensordot",
    "fsm",
    "emit_behavioral_verilog",
]
