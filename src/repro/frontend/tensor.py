"""Linear-algebra benchmark generators (paper Section 7.1).

``tensoradd`` is an element-wise sum over one-dimensional tensors,
"pipelined with register instructions to get the best possible
performance available in DSP primitives"; the Reticle version uses
vector types so selection picks SIMD DSP configurations, while the
scalar variant is what the behavioral baselines see (a loop of scalar
adds, Figure 3).  ``tensordot`` is systolic arrays of multiply-add
chains whose accumulation spine the layout optimizer cascades.
"""

from __future__ import annotations

from repro.errors import ReticleError
from repro.ir.ast import Func, Res
from repro.ir.builder import FuncBuilder
from repro.ir.ops import CompOp


def tensoradd_vector(
    size: int, lanes: int = 4, width: int = 8, name: str = "tensoradd"
) -> Func:
    """The Reticle tensoradd: pipelined, vectorized element-wise add.

    ``size`` scalar elements are carried as ``size/lanes`` vector
    values; each column is input-registered, added, and output-
    registered, which the selector fuses into one fully pipelined SIMD
    DSP per column.
    """
    if size % lanes:
        raise ReticleError(f"size {size} is not a multiple of {lanes} lanes")
    columns = size // lanes
    ty = f"i{width}<{lanes}>"
    fb = FuncBuilder(name, inputs=[("en", "bool")])
    outputs = []
    for index in range(columns):
        fb.add_input(f"a{index}", ty)
        fb.add_input(f"b{index}", ty)
        left = fb.reg(f"a{index}", "en")
        right = fb.reg(f"b{index}", "en")
        total = fb.add(left, right)
        fb.reg(total, "en", dst=f"y{index}")
        outputs.append((f"y{index}", ty))
    return fb.build(outputs=outputs)


def tensoradd_scalar(
    size: int, width: int = 8, dsp_hint: bool = False, name: str = "tensoradd"
) -> Func:
    """The behavioral baseline: a loop of scalar adds (Figure 3).

    With ``dsp_hint`` the adds carry ``@dsp`` annotations, modelling
    the ``(* use_dsp = "yes" *)`` directive — which the vendor
    toolchain treats as a soft preference, not a constraint.
    """
    ty = f"i{width}"
    res = Res.DSP if dsp_hint else Res.ANY
    fb = FuncBuilder(name, inputs=[("en", "bool")])
    outputs = []
    for index in range(size):
        fb.add_input(f"a{index}", ty)
        fb.add_input(f"b{index}", ty)
        left = fb.reg(f"a{index}", "en")
        right = fb.reg(f"b{index}", "en")
        total = fb.comp(CompOp.ADD, [left, right], res=res)
        fb.reg(total, "en", dst=f"y{index}")
        outputs.append((f"y{index}", ty))
    return fb.build(outputs=outputs)


def tensordot(
    arrays: int = 5, size: int = 3, width: int = 8, name: str = "tensordot"
) -> Func:
    """Systolic dot products: ``arrays`` independent multiply-add
    chains over ``size``-element tensor pairs (paper Section 7.1).

    Each stage registers its operands, multiplies, adds the partial
    sum flowing down the chain, and registers the result — the shape
    the selector fuses into pipelined ``muladd`` DSPs and the layout
    optimizer cascades down a DSP column.  The same program serves all
    three flows: the vendor's hint mode discovers the same fusion
    heuristically, its base mode maps the multiplies to isolated DSPs.
    """
    ty = f"i{width}"
    fb = FuncBuilder(name, inputs=[("en", "bool")])
    outputs = []
    for array in range(arrays):
        acc = fb.const(0, ty)
        for stage in range(size):
            fb.add_input(f"a{array}_{stage}", ty)
            fb.add_input(f"b{array}_{stage}", ty)
            left = fb.reg(f"a{array}_{stage}", "en")
            right = fb.reg(f"b{array}_{stage}", "en")
            product = fb.mul(left, right)
            total = fb.add(product, acc)
            acc = fb.reg(total, "en")
        fb.id_(acc, dst=f"y{array}")
        outputs.append((f"y{array}", ty))
    return fb.build(outputs=outputs)
