"""The coroutine finite-state-machine benchmark (paper Section 7.1).

A hardware coroutine that ranges over ``states`` states based on input
values: in state ``s`` it advances (wrapping) when the input equals
``s``, otherwise it holds.  Conditional branching needs multiplexing
(``mux``), which only LUT logic implements — the benchmark
demonstrates that control-oriented programs map (only) to LUTs, and
that vendor logic optimization beats Reticle's direct mapping there
(Section 7.2).
"""

from __future__ import annotations

from repro.errors import ReticleError
from repro.ir.ast import Func
from repro.ir.builder import FuncBuilder

STATE_WIDTH = 4  # up to 16 states


def fsm(states: int, name: str = "fsm") -> Func:
    """Build the coroutine FSM over ``states`` states.

    Ports: ``inp`` (the coroutine's resume argument), ``en`` (clock
    enable); outputs the current state and a ``done`` flag raised in
    the final state.
    """
    if not 2 <= states <= (1 << STATE_WIDTH):
        raise ReticleError(f"states must be in [2, 16], got {states}")
    ty = f"i{STATE_WIDTH}"
    fb = FuncBuilder(name, inputs=[("inp", ty), ("en", "bool")])
    state = fb.declare("state", ty)

    # One decode rung per state: in state s with inp == s, advance to
    # (s + 1) mod states; the rungs chain through muxes.
    consts = [fb.const(s, ty) for s in range(states)]
    next_state = state
    for s in range(states):
        here = fb.eq(state, consts[s])
        hit = fb.eq("inp", consts[s])
        go = fb.and_(here, hit)
        target = consts[(s + 1) % states]
        step = fb.mux(go, target, next_state)
        next_state = step

    fb.reg(next_state, "en", init=0, dst="state")
    fb.id_(state, dst="out")
    done = fb.eq(state, consts[states - 1])
    fb.id_(done, dst="done")
    return fb.build(outputs=[("out", ty), ("done", "bool")])
