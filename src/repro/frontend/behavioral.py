"""Behavioral-Verilog emission for the baseline programs.

The paper generates its Vivado baselines "by transforming Reticle
programs using translation backends that emit code resembling
standard behavioral Verilog" (Section 7).  This backend renders an IR
function as behavioral Verilog text — continuous assignments for pure
operations, a clocked block for registers, and the ``use_dsp``
module attribute in hint mode — so the baselines are inspectable as
the HDL a vendor tool would consume.  (The vendor-toolchain simulator
itself consumes the IR directly; see DESIGN.md.)
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import CodegenError
from repro.ir.ast import CompInstr, Func, WireInstr
from repro.ir.ops import CompOp, WireOp
from repro.ir.scalarize import scalarize_func
from repro.ir.semantics import eval_wire, reg_init_pattern
from repro.ir.types import Ty
from repro.verilog.ast import (
    AlwaysFF,
    Assign,
    Attribute,
    Binary,
    Concat,
    Expr,
    IntLit,
    Item,
    Module,
    NonBlocking,
    Port,
    Ref,
    RegDecl,
    Slice,
    Ternary,
    Unary,
    WireDecl,
)
from repro.verilog.printer import print_module

_BIN_OPS = {
    CompOp.ADD: "+",
    CompOp.SUB: "-",
    CompOp.MUL: "*",
    CompOp.AND: "&",
    CompOp.OR: "|",
    CompOp.XOR: "^",
}
_CMP_OPS = {
    CompOp.EQ: "==",
    CompOp.NEQ: "!=",
    CompOp.LT: "<",
    CompOp.GT: ">",
    CompOp.LE: "<=",
    CompOp.GE: ">=",
}


def _signed(expr: Expr) -> Expr:
    return Unary("$signed", expr)


def _comp_expr(instr: CompInstr, types: Dict[str, Ty]) -> Expr:
    op = instr.op
    if op in _BIN_OPS:
        # Arithmetic wraps modulo the bus width, so signedness is
        # immaterial for +, -, *, and the bitwise operators.
        return Binary(_BIN_OPS[op], Ref(instr.args[0]), Ref(instr.args[1]))
    if op in _CMP_OPS:
        left, right = (Ref(arg) for arg in instr.args)
        if types[instr.args[0]].is_signed:
            left, right = _signed(left), _signed(right)
        return Binary(_CMP_OPS[op], left, right)
    if op is CompOp.NOT:
        return Unary("~", Ref(instr.args[0]))
    if op is CompOp.MUX:
        return Ternary(
            Ref(instr.args[0]), Ref(instr.args[1]), Ref(instr.args[2])
        )
    raise CodegenError(f"cannot emit {op} behaviorally")  # pragma: no cover


def _wire_expr(instr: WireInstr, types: Dict[str, Ty]) -> Expr:
    op = instr.op
    width = instr.ty.width
    if op is WireOp.CONST:
        pattern = eval_wire(op, instr.ty, instr.attrs, [], [])
        return IntLit(pattern, width)
    if op is WireOp.ID:
        return Ref(instr.args[0])
    if op is WireOp.SLL:
        return Binary("<<", Ref(instr.args[0]), IntLit(instr.attrs[0]))
    if op is WireOp.SRL:
        return Binary(">>", Ref(instr.args[0]), IntLit(instr.attrs[0]))
    if op is WireOp.SRA:
        return Binary(">>>", _signed(Ref(instr.args[0])), IntLit(instr.attrs[0]))
    if op is WireOp.SLICE:
        arg_ty = types[instr.args[0]]
        if arg_ty.is_vector:
            lane = instr.attrs[0]
            lane_width = arg_ty.lane_type().width
            return Slice(
                Ref(instr.args[0]),
                (lane + 1) * lane_width - 1,
                lane * lane_width,
            )
        hi, lo = instr.attrs
        return Slice(Ref(instr.args[0]), hi, lo)
    if op is WireOp.CAT:
        return Concat(tuple(Ref(arg) for arg in reversed(instr.args)))
    raise CodegenError(f"cannot emit {op} behaviorally")  # pragma: no cover


def behavioral_module(func: Func, use_dsp_attr: bool = False) -> Module:
    """Render an IR function as a behavioral Verilog module."""
    func = scalarize_func(func)
    types = func.defs()
    output_names = set(func.output_names())

    reg_outputs = set()
    items: List[Item] = []
    clocked: List[NonBlocking] = []
    for instr in func.instrs:
        is_output = instr.dst in output_names
        if isinstance(instr, CompInstr) and instr.op is CompOp.REG:
            init = reg_init_pattern(instr.attrs, instr.ty)
            if is_output:
                reg_outputs.add(instr.dst)  # declared as `output reg`
            else:
                items.append(RegDecl(instr.dst, instr.ty.width, init=init))
            clocked.append(
                NonBlocking(
                    lhs=Ref(instr.dst),
                    rhs=Ref(instr.args[0]),
                    cond=Ref(instr.args[1]),
                )
            )
            continue
        if not is_output:
            items.append(WireDecl(instr.dst, instr.ty.width))
        if isinstance(instr, CompInstr):
            expr = _comp_expr(instr, types)
        else:
            expr = _wire_expr(instr, types)
        items.append(Assign(Ref(instr.dst), expr))
    if clocked:
        items.append(AlwaysFF(clock="clock", body=tuple(clocked)))

    ports: List[Port] = [Port("input", "clock", 1)]
    for port in func.inputs:
        ports.append(Port("input", port.name, port.ty.width))
    for port in func.outputs:
        ports.append(
            Port("output", port.name, port.ty.width, reg=port.name in reg_outputs)
        )

    attributes = (
        (Attribute("use_dsp", "yes"),) if use_dsp_attr else ()
    )
    return Module(
        name=func.name, ports=tuple(ports), items=tuple(items),
        attributes=attributes,
    )


def emit_behavioral_verilog(func: Func, use_dsp_attr: bool = False) -> str:
    """Behavioral Verilog text for an IR function."""
    return print_module(behavioral_module(func, use_dsp_attr))
