"""Physical primitive kinds (``ρ`` in paper Figure 5).

Lives at the package root because it is shared by the assembly
language, the target description language, the device model, and the
code generator.
"""

from __future__ import annotations

import enum


class Prim(enum.Enum):
    """The programmable compute primitives of modern FPGAs.

    ``LUT`` and ``DSP`` are the paper's two primitives; ``BRAM`` is
    this reproduction's implementation of the paper's stated future
    work ("it does not support memory primitives, such as BRAMs",
    Section 1).
    """

    LUT = "lut"
    DSP = "dsp"
    BRAM = "bram"

    def __str__(self) -> str:
        return self.value
