"""Tokenizer shared by the IR, ASM, and TDL parsers.

The three surface languages of the paper (Figures 5a, 5b, and 9) share
one lexical grammar: identifiers, integers, and a small set of
punctuation including the wildcard ``??`` and the arrow ``->``.
Comments are ``//`` to end of line and ``/* ... */`` blocks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import LexError


class TokenKind(enum.Enum):
    IDENT = "ident"
    INT = "int"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    LANGLE = "<"
    RANGLE = ">"
    COMMA = ","
    COLON = ":"
    SEMI = ";"
    EQUALS = "="
    AT = "@"
    ARROW = "->"
    WILDCARD = "??"
    PLUS = "+"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    col: int

    @property
    def int_value(self) -> int:
        return int(self.text)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind.name}({self.text!r})@{self.line}:{self.col}"


_SINGLE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "<": TokenKind.LANGLE,
    ">": TokenKind.RANGLE,
    ",": TokenKind.COMMA,
    ":": TokenKind.COLON,
    ";": TokenKind.SEMI,
    "=": TokenKind.EQUALS,
    "@": TokenKind.AT,
    "+": TokenKind.PLUS,
}


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``, returning a list ending in an EOF token."""
    tokens: List[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)

    def error(message: str) -> LexError:
        return LexError(message, line, col)

    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            for consumed in source[i : end + 2]:
                if consumed == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
            i = end + 2
            continue
        if source.startswith("->", i):
            tokens.append(Token(TokenKind.ARROW, "->", line, col))
            i += 2
            col += 2
            continue
        if source.startswith("??", i):
            tokens.append(Token(TokenKind.WILDCARD, "??", line, col))
            i += 2
            col += 2
            continue
        if ch == "-" or ch.isdigit():
            start = i
            start_col = col
            if ch == "-":
                i += 1
                col += 1
                if i >= n or not source[i].isdigit():
                    raise error("expected digits after '-'")
            while i < n and source[i].isdigit():
                i += 1
                col += 1
            tokens.append(Token(TokenKind.INT, source[start:i], line, start_col))
            continue
        if _is_ident_start(ch):
            start = i
            start_col = col
            while i < n and _is_ident_char(source[i]):
                i += 1
                col += 1
            tokens.append(
                Token(TokenKind.IDENT, source[start:i], line, start_col)
            )
            continue
        kind = _SINGLE_CHAR.get(ch)
        if kind is not None:
            tokens.append(Token(kind, ch, line, col))
            i += 1
            col += 1
            continue
        raise error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens
