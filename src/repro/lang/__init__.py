"""Shared lexical and parsing infrastructure for the three Reticle
textual languages: the intermediate language (IR), the assembly
language (ASM), and the target description language (TDL)."""

from repro.lang.lexer import Token, TokenKind, tokenize
from repro.lang.cursor import TokenCursor

__all__ = ["Token", "TokenKind", "tokenize", "TokenCursor"]
