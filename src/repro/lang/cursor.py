"""A token cursor with the lookahead/expect operations the recursive
descent parsers share."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ParseError
from repro.lang.lexer import Token, TokenKind


class TokenCursor:
    """Sequential reader over a token list with one-token lookahead."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    @property
    def peek(self) -> Token:
        return self._tokens[self._index]

    def at(self, kind: TokenKind, text: Optional[str] = None) -> bool:
        token = self.peek
        if token.kind is not kind:
            return False
        return text is None or token.text == text

    def advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def accept(self, kind: TokenKind, text: Optional[str] = None) -> Optional[Token]:
        """Consume and return the next token if it matches, else None."""
        if self.at(kind, text):
            return self.advance()
        return None

    def expect(self, kind: TokenKind, text: Optional[str] = None) -> Token:
        """Consume the next token, raising ParseError on mismatch."""
        token = self.peek
        if not self.at(kind, text):
            wanted = text if text is not None else kind.value
            raise ParseError(
                f"expected {wanted!r}, found {token.text or token.kind.value!r}",
                token.line,
                token.col,
            )
        return self.advance()

    def expect_ident(self, text: Optional[str] = None) -> Token:
        return self.expect(TokenKind.IDENT, text)

    def expect_int(self) -> int:
        return self.expect(TokenKind.INT).int_value

    def at_end(self) -> bool:
        return self.peek.kind is TokenKind.EOF

    def error(self, message: str) -> ParseError:
        token = self.peek
        return ParseError(message, token.line, token.col)
