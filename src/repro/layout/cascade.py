"""Instruction cascading (paper Section 5.2, Figure 11).

DSP columns contain dedicated high-speed routes between vertically
adjacent slices.  A chain of accumulating operations — e.g. the
``muladd`` spine of a systolic dot product — can use those routes
instead of general fabric routing if (1) each link's partial sum flows
over the cascade ports and (2) the linked instructions are placed in
the same column on adjacent rows.

This pass finds such chains, rewrites their operations to the
``_co``/``_cico``/``_ci`` cascade variants, and replaces their
wildcard coordinates with shared symbolic expressions
``(x, y) / (x, y+1) / ...`` — adjacency *constraints* that the placer
later solves for a concrete device.

Conventions: the cascaded value is the definition input named ``c``
(the DSP's partial-sum port), and a chain link requires the producer's
value to have no other consumer.  Instructions whose coordinates are
not wildcards are left alone — user-written constraints win.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.asm.ast import AsmFunc, AsmInstr
from repro.asm.coords import CoordVar, CoordWildcard, Loc
from repro.errors import LayoutError
from repro.obs import NULL_TRACER, Severity
from repro.prims import Prim
from repro.tdl.ast import AsmDef, Target
from repro.utils.names import NameGenerator

CASCADE_INPUT = "c"


def _cascade_arg_position(asm_def: AsmDef) -> Optional[int]:
    """Index of the cascade-capable input (named ``c``), if any."""
    for position, port in enumerate(asm_def.inputs):
        if port.name == CASCADE_INPUT:
            return position
    return None


def _is_cascadable(op: str, target: Target) -> bool:
    """An op can join a chain if all three cascade variants exist."""
    return (
        f"{op}_co" in target
        and f"{op}_ci" in target
        and f"{op}_cico" in target
    )


@dataclass
class Chain:
    """A maximal run of cascade-linked instructions, head first."""

    instrs: List[AsmInstr] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instrs)


def cascade_chains(func: AsmFunc, target: Target) -> List[Chain]:
    """Find all maximal cascade chains of length >= 2 in ``func``."""
    use_count: Dict[str, int] = {}
    for instr in func.instrs:
        for arg in instr.args:
            use_count[arg] = use_count.get(arg, 0) + 1
    for port in func.outputs:
        use_count[port.name] = use_count.get(port.name, 0) + 1

    producers: Dict[str, AsmInstr] = {
        instr.dst: instr for instr in func.asm_instrs()
    }

    def eligible(instr: AsmInstr) -> bool:
        return (
            instr.loc.prim is Prim.DSP
            and isinstance(instr.loc.x, CoordWildcard)
            and isinstance(instr.loc.y, CoordWildcard)
            and instr.op in target
            and _is_cascadable(instr.op, target)
        )

    # Successor link: A -> B when B's `c` input is A's value and A's
    # value has no other consumer.
    successor: Dict[str, AsmInstr] = {}
    has_predecessor: Dict[str, bool] = {}
    for instr in func.asm_instrs():
        if not eligible(instr):
            continue
        position = _cascade_arg_position(target[instr.op])
        if position is None:
            continue
        source = instr.args[position]
        producer = producers.get(source)
        if (
            producer is not None
            and eligible(producer)
            and use_count.get(source, 0) == 1
        ):
            successor[producer.dst] = instr
            has_predecessor[instr.dst] = True

    chains: List[Chain] = []
    for instr in func.asm_instrs():
        if instr.dst in successor and not has_predecessor.get(instr.dst):
            chain = Chain()
            cursor: Optional[AsmInstr] = instr
            while cursor is not None:
                chain.instrs.append(cursor)
                cursor = successor.get(cursor.dst)
            chains.append(chain)
    return chains


@dataclass
class CascadeRewriter:
    """Applies cascading to assembly functions against one target."""

    target: Target

    def rewrite(
        self, func: AsmFunc, tracer=NULL_TRACER, lineage=None
    ) -> AsmFunc:
        """Rewrite all cascade chains in ``func``.

        ``tracer`` receives ``cascade.*`` counters plus one structured
        event per chain rewritten (and a debug event when nothing was
        rewritable); ``lineage`` records the op rename of every
        instruction pulled into a chain.
        """
        chains = cascade_chains(func, self.target)
        if not chains:
            tracer.event(
                Severity.DEBUG,
                "cascade",
                "no cascade chains found",
                func=func.name,
            )
            return func
        tracer.count("cascade.chains", len(chains))
        tracer.count(
            "cascade.rewritten", sum(len(chain) for chain in chains)
        )

        taken = set()
        for instr in func.asm_instrs():
            for coord in (instr.loc.x, instr.loc.y):
                if isinstance(coord, CoordVar):
                    taken.add(coord.var)
        names = NameGenerator(taken)

        replacement: Dict[str, AsmInstr] = {}
        for chain_index, chain in enumerate(chains):
            x_var = CoordVar(names.fresh("cx"))
            y_base = names.fresh("cy")
            last = len(chain) - 1
            tracer.event(
                Severity.INFO,
                "cascade",
                f"chain of {len(chain)} rewritten to cascade ports",
                provenance=chain.instrs[0].dst,
                chain=chain_index,
                length=len(chain),
            )
            for row, instr in enumerate(chain.instrs):
                if row == 0:
                    suffix = "_co"
                elif row == last:
                    suffix = "_ci"
                else:
                    suffix = "_cico"
                new_op = f"{instr.op}{suffix}"
                if new_op not in self.target:  # pragma: no cover - guarded
                    raise LayoutError(f"missing cascade variant {new_op!r}")
                loc = Loc(Prim.DSP, x_var, CoordVar(y_base, row))
                replacement[instr.dst] = instr.with_op(new_op).with_loc(loc)
                if lineage is not None:
                    lineage.record_rewrite(instr.dst, new_op)

        instrs = tuple(
            replacement.get(instr.dst, instr) for instr in func.instrs
        )
        return func.with_instrs(instrs)


def apply_cascading(
    func: AsmFunc, target: Target, tracer=NULL_TRACER, lineage=None
) -> AsmFunc:
    """One-shot cascading rewrite."""
    return CascadeRewriter(target=target).rewrite(
        func, tracer=tracer, lineage=lineage
    )
