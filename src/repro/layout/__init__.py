"""Layout optimizations on assembly programs (paper Section 5.2)."""

from repro.layout.cascade import CascadeRewriter, apply_cascading, cascade_chains

__all__ = ["CascadeRewriter", "apply_cascading", "cascade_chains"]
