"""The delay model: per-primitive and routing delays in picoseconds.

Values are calibrated to public UltraScale+ speed-grade figures rather
than measured silicon: a fully pipelined DSP slice is rated at 891 MHz
for the fastest grade (its internal register-to-register path is
~1120 ps), while large fabric designs typically close timing below
400 MHz — the RapidWright observation quoted in the paper's Section 1.
The *ratios* between entries are what the evaluation's run-time shapes
depend on; absolute values only set the reported frequency scale.

All delays are integers in picoseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class DelayModel:
    """Delay parameters shared by the TDL library, the STA, and the
    vendor simulator."""

    # -- LUT fabric ----------------------------------------------------
    lut_logic: int = 120          # one LUT lookup
    carry_in: int = 40            # getting onto a carry chain
    carry_per_bit: int = 15       # per bit along a CARRY8 chain
    ff_setup: int = 60            # FDRE setup
    ff_clk_to_q: int = 100        # FDRE clock-to-out

    # -- DSP slice -----------------------------------------------------
    # Combinational delays through the ALU / multiplier.  With PREG
    # set, <op> + dsp_setup is the internal register-to-register path:
    # muladd lands at ~1120 ps = the 891 MHz datasheet rating.
    dsp_add: int = 780            # scalar 48-bit ALU op
    dsp_add_simd: int = 900       # SIMD (TWO24/FOUR12) ALU op
    dsp_mul: int = 950            # 27x18 multiply
    dsp_muladd: int = 1000        # multiply feeding the ALU
    dsp_clk_to_q: int = 350       # P register clock-to-out (PREG=1)
    dsp_setup: int = 120          # input/pipeline register setup

    # -- Block RAM (memory-primitive extension) -------------------------
    bram_clk_to_q: int = 800      # registered read port, clock-to-out
    bram_setup: int = 300         # address/data/enable setup

    # -- Routing -------------------------------------------------------
    net_base: int = 250           # any general-fabric net
    net_per_unit: int = 8         # per unit of Manhattan distance
    cascade_net: int = 20         # dedicated DSP column cascade route
    io_net: int = 350             # top-level port to first cell
    # High-fanout nets slow down even with buffering; the penalty grows
    # with the square root of the load count (buffer trees amortize).
    fanout_sqrt_ps: int = 25

    def net_delay(self, distance: int) -> int:
        """General routing delay for a net spanning ``distance`` units."""
        return self.net_base + self.net_per_unit * distance

    def fanout_delay(self, fanout: int) -> int:
        """Extra delay for a net with ``fanout`` loads."""
        if fanout <= 1:
            return 0
        return int(self.fanout_sqrt_ps * math.sqrt(fanout - 1))

    def carry_chain(self, bits: int) -> int:
        """Delay through a ``bits``-bit carry chain (entry + ripple)."""
        return self.carry_in + self.carry_per_bit * bits


DEFAULT_DELAYS = DelayModel()
