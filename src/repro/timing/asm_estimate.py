"""Instruction-level timing estimation on placed assembly programs.

The paper leaves timing-driven layout as future work ("incorporating
timing information ... is beyond the scope of this work", §1); this
estimator is the first step that direction: a critical-path estimate
computed *before* code generation, directly on the placed assembly,
using the target description's per-instruction latencies plus the
shared routing model.  It lets layout decisions be compared without
running the full back end; the authoritative numbers remain the
netlist-level STA.

An instruction whose definition registers an input consumes that
operand at a pipeline register (the path ends there); an instruction
whose definition output is a register launches a fresh path.  The
``c`` operand of a ``_ci``/``_cico`` cascade variant arrives over the
dedicated cascade route.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.asm.ast import AsmFunc, AsmInstr
from repro.errors import LayoutError
from repro.ir.ast import CompInstr, WireInstr
from repro.ir.ops import CompOp
from repro.prims import Prim
from repro.tdl.ast import AsmDef, Target
from repro.timing.constants import DEFAULT_DELAYS, DelayModel
from repro.timing.sta import COLUMN_PITCH


@dataclass(frozen=True)
class AsmTimingReport:
    """Estimated critical path of a placed assembly function."""

    critical_ps: int
    fmax_mhz: float
    endpoint: str

    def __str__(self) -> str:
        return (
            f"estimated critical path {self.critical_ps} ps "
            f"({self.fmax_mhz:.1f} MHz) ending at {self.endpoint}"
        )


def _registered_inputs(asm_def: AsmDef) -> Set[str]:
    """Input ports whose value lands in a pipeline register.

    Register *enables* count too: an input consumed only as the enable
    of registers is a register control, ending its path at a register,
    not crossing the instruction's combinational logic.
    """
    inputs = {port.name for port in asm_def.inputs}
    registered = set()
    enable_only = set()
    data_use = set()
    for body in asm_def.body:
        if isinstance(body, CompInstr) and body.op is CompOp.REG:
            if body.dst != asm_def.output.name and body.args[0] in inputs:
                registered.add(body.args[0])
            elif body.args[0] in inputs:
                data_use.add(body.args[0])
            if body.args[1] in inputs:
                enable_only.add(body.args[1])
        else:
            data_use.update(arg for arg in body.args if arg in inputs)
    registered.update(enable_only - data_use)
    return registered


def _launches_path(asm_def: AsmDef) -> bool:
    return asm_def.root().op is CompOp.REG


def estimate_asm_timing(
    func: AsmFunc,
    target: Target,
    delays: DelayModel = DEFAULT_DELAYS,
) -> AsmTimingReport:
    """Estimate the critical path of a *placed* assembly function."""
    if not func.is_placed:
        raise LayoutError("timing estimation needs a placed function")

    producers: Dict[str, AsmInstr] = {}
    wire_sources: Dict[str, Tuple[str, ...]] = {}
    for instr in func.instrs:
        if isinstance(instr, AsmInstr):
            producers[instr.dst] = instr
        else:
            assert isinstance(instr, WireInstr)
            wire_sources[instr.dst] = instr.args

    def_of = {instr.dst: target[instr.op] for instr in func.asm_instrs()}
    arrivals: Dict[str, int] = {}

    def trace_sources(name: str) -> Tuple[str, ...]:
        """Resolve through (free) wire instructions to real sources."""
        if name in wire_sources:
            found: Tuple[str, ...] = ()
            for source in wire_sources[name]:
                found += trace_sources(source)
            return found
        return (name,)

    def clk_to_q(prim: Prim) -> int:
        return (
            delays.dsp_clk_to_q if prim is Prim.DSP else delays.ff_clk_to_q
        )

    def setup(prim: Prim) -> int:
        return delays.dsp_setup if prim is Prim.DSP else delays.ff_setup

    def route(
        producer: Optional[AsmInstr], consumer: AsmInstr, cascade: bool
    ) -> int:
        if producer is None:
            return delays.io_net
        if cascade:
            return delays.cascade_net
        (a_col, a_row) = producer.loc.position()
        (b_col, b_row) = consumer.loc.position()
        distance = COLUMN_PITCH * abs(a_col - b_col) + abs(a_row - b_row)
        return delays.net_delay(distance)

    def arrival_of(instr: AsmInstr) -> int:
        """Arrival at the instruction's (combinational) output."""
        cached = arrivals.get(instr.dst)
        if cached is not None:
            return cached
        asm_def = def_of[instr.dst]
        if _launches_path(asm_def):
            value = clk_to_q(instr.loc.prim)
        else:
            value = _input_arrival(instr, asm_def) + asm_def.latency
        arrivals[instr.dst] = value
        return value

    def _input_arrival(instr: AsmInstr, asm_def: AsmDef) -> int:
        registered = _registered_inputs(asm_def)
        is_cascade = instr.op.endswith("_ci") or instr.op.endswith("_cico")
        worst = 0
        for port, arg in zip(asm_def.inputs, instr.args):
            if port.name in registered:
                continue  # ends at the pipeline register, not here
            cascade = is_cascade and port.name == "c"
            for source in trace_sources(arg):
                producer = producers.get(source)
                if producer is None:
                    worst = max(worst, delays.io_net)
                    continue
                hop = route(producer, instr, cascade)
                if _launches_path(def_of[producer.dst]):
                    worst = max(worst, clk_to_q(producer.loc.prim) + hop)
                else:
                    worst = max(worst, arrival_of(producer) + hop)
        return worst

    best = (1, "<none>")
    for instr in func.asm_instrs():
        asm_def = def_of[instr.dst]
        registered = _registered_inputs(asm_def)
        is_cascade = instr.op.endswith("_ci") or instr.op.endswith("_cico")

        # Paths ending at this instruction's pipeline/output registers.
        if _launches_path(asm_def):
            # Unregistered operands cross the internal logic first.
            in_arrival = _input_arrival(instr, asm_def)
            internal = (
                asm_def.latency if len(asm_def.body) > 1 else 0
            )
            total = in_arrival + internal + setup(instr.loc.prim)
            best = max(best, (total, instr.dst))
            # Registered operands end at the input registers.
            for port, arg in zip(asm_def.inputs, instr.args):
                if port.name not in registered:
                    continue
                cascade = is_cascade and port.name == "c"
                for source in trace_sources(arg):
                    producer = producers.get(source)
                    if producer is None:
                        arrived = delays.io_net
                    else:
                        hop = route(producer, instr, cascade)
                        if _launches_path(def_of[producer.dst]):
                            arrived = clk_to_q(producer.loc.prim) + hop
                        else:
                            arrived = arrival_of(producer) + hop
                    best = max(
                        best, (arrived + setup(instr.loc.prim), instr.dst)
                    )
            if registered:
                # Internal register-to-register path.
                best = max(
                    best,
                    (
                        asm_def.latency + setup(instr.loc.prim),
                        instr.dst,
                    ),
                )

    # Paths ending at output ports.
    for name in func.output_names():
        for source in trace_sources(name):
            producer = producers.get(source)
            if producer is None:
                best = max(best, (delays.io_net, f"<output {name}>"))
                continue
            if _launches_path(def_of[producer.dst]):
                arrived = clk_to_q(producer.loc.prim) + delays.net_base
            else:
                arrived = arrival_of(producer) + delays.net_base
            best = max(best, (arrived, f"<output {name}>"))

    critical, endpoint = best
    return AsmTimingReport(
        critical_ps=critical,
        fmax_mhz=1_000_000.0 / critical,
        endpoint=endpoint,
    )
