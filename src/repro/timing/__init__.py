"""Static timing analysis over placed netlists.

"Run-time" in the paper's evaluation is the critical path of the
generated hardware circuit, which sets its maximum clock frequency
(Section 7.2).  This package provides the delay model and the
register-to-register longest-path analysis used to score both the
Reticle flow and the vendor-simulator baseline.
"""

from repro.timing.constants import DelayModel, DEFAULT_DELAYS
from repro.timing.sta import TimingReport, analyze_netlist

__all__ = ["DelayModel", "DEFAULT_DELAYS", "TimingReport", "analyze_netlist"]
