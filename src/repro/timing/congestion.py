"""Utilization and routing-congestion reporting for placed netlists.

Vendor tools report per-region utilization and routing congestion
after placement; this analysis provides the reproduction's version:
per-column occupancy (cells vs slice capacity) and an estimate of
horizontal routing demand — every column a net crosses between its
producer's and consumer's columns contributes one unit of demand to
that column.  Dedicated routes (carry spines, DSP cascades) cross
nothing and contribute nothing, which is exactly why the cascading
optimization relieves fabric routing (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.netlist.core import Cell, Netlist
from repro.place.device import Device, LUTS_PER_SLICE
from repro.prims import Prim


@dataclass(frozen=True)
class ColumnReport:
    """Occupancy and routing demand for one device column."""

    column: int
    kind: Prim
    cells: int
    capacity: int
    crossing_nets: int

    @property
    def occupancy(self) -> float:
        return self.cells / self.capacity if self.capacity else 0.0


@dataclass(frozen=True)
class CongestionReport:
    """The whole-device analysis."""

    columns: Tuple[ColumnReport, ...]
    total_nets: int
    total_crossings: int

    @property
    def average_net_span(self) -> float:
        """Mean number of column crossings per net (0 = all local)."""
        if self.total_nets == 0:
            return 0.0
        return self.total_crossings / self.total_nets

    def hotspots(self, top: int = 5) -> List[ColumnReport]:
        """Columns with the highest routing demand."""
        ranked = sorted(
            self.columns, key=lambda c: (-c.crossing_nets, c.column)
        )
        return [c for c in ranked[:top] if c.crossing_nets > 0]

    def table(self) -> str:
        """Aligned text rendering of the non-empty columns."""
        lines = ["col  kind  cells  occupancy  crossing-nets"]
        for report in self.columns:
            if report.cells == 0 and report.crossing_nets == 0:
                continue
            lines.append(
                f"{report.column:<4} {report.kind.value:<5} "
                f"{report.cells:<6} {report.occupancy:>8.1%}  "
                f"{report.crossing_nets}"
            )
        return "\n".join(lines)


def _column_capacity(device: Device, column: int) -> int:
    """Placeable cells per column (LUT columns host 8 LUTs + 8 FFs +
    a carry per slice; DSP columns one DSP per slice)."""
    spec = device.column(column)
    if spec.kind is Prim.DSP:
        return spec.height
    return spec.height * (LUTS_PER_SLICE * 2 + 1)


def _dedicated_route(producer: Cell, consumer: Cell, pin: str) -> bool:
    if pin == "CI" and producer.kind == "CARRY8":
        return True
    if pin == "PCIN" and producer.kind == "DSP48E2":
        return True
    return False


def analyze_congestion(netlist: Netlist, device: Device) -> CongestionReport:
    """Compute occupancy and crossing demand for a placed netlist."""
    cells_per_column: Dict[int, int] = {}
    for cell in netlist.cells:
        if cell.loc is None:
            continue
        cells_per_column[cell.loc[1]] = (
            cells_per_column.get(cell.loc[1], 0) + 1
        )

    drivers = netlist.driver_map()
    crossings: Dict[int, int] = {}
    total_nets = 0
    total_crossings = 0
    seen_pairs = set()
    for cell in netlist.cells:
        for pin, bits in cell.inputs.items():
            for bit in bits:
                producer = drivers.get(bit)
                if producer is None or producer.loc is None or cell.loc is None:
                    continue
                key = (id(producer), id(cell), pin)
                if key in seen_pairs:
                    continue
                seen_pairs.add(key)
                total_nets += 1
                if _dedicated_route(producer, cell, pin):
                    continue
                low = min(producer.loc[1], cell.loc[1])
                high = max(producer.loc[1], cell.loc[1])
                for column in range(low, high):
                    crossings[column] = crossings.get(column, 0) + 1
                    total_crossings += 1

    columns = tuple(
        ColumnReport(
            column=index,
            kind=device.column(index).kind,
            cells=cells_per_column.get(index, 0),
            capacity=_column_capacity(device, index),
            crossing_nets=crossings.get(index, 0),
        )
        for index in range(device.num_columns)
    )
    return CongestionReport(
        columns=columns,
        total_nets=total_nets,
        total_crossings=total_crossings,
    )
