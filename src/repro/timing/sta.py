"""Static timing analysis over placed netlists.

Computes the worst register-to-register (or port-to-port) path — the
circuit's critical path, whose reciprocal is the maximum clock
frequency.  This is the quantity the paper's "run-time" plots report
(Section 7.2): a *placed* netlist is scored with cell delays plus
distance-dependent routing delays, so the same analysis ranks both
Reticle's deterministic layouts and the vendor simulator's annealed
layouts.

Routing special cases mirror the hardware: CARRY8 ``CI`` fed by
another CARRY8 uses the dedicated carry spine (zero route), and DSP
``PCIN`` fed by ``PCOUT`` uses the dedicated cascade route — the whole
point of the cascading optimization (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import SimulationError
from repro.netlist.core import Cell, Netlist
from repro.netlist.primitives import dsp_registered_pins
from repro.timing.constants import DEFAULT_DELAYS, DelayModel

# Columns are physically wider than rows in routing terms.
COLUMN_PITCH = 4


@dataclass(frozen=True)
class TimingReport:
    """The result of one analysis."""

    critical_ps: int
    fmax_mhz: float
    endpoint: str
    path: Tuple[str, ...] = ()

    def __str__(self) -> str:
        return (
            f"critical path {self.critical_ps} ps "
            f"({self.fmax_mhz:.1f} MHz) ending at {self.endpoint}"
        )


def _distance(a: Optional[Tuple[int, int]], b: Optional[Tuple[int, int]]) -> int:
    if a is None or b is None:
        return 0
    return COLUMN_PITCH * abs(a[0] - b[0]) + abs(a[1] - b[1])


class _Analyzer:
    def __init__(self, netlist: Netlist, delays: DelayModel) -> None:
        self.netlist = netlist
        self.delays = delays
        self.drivers = netlist.driver_map()
        self.input_bits = netlist.input_bit_set()
        self._arrival: Dict[int, Tuple[int, Tuple[str, ...]]] = {}
        self._fanout: Dict[int, int] = {}
        for cell in netlist.cells:
            for bit in cell.input_bits():
                self._fanout[bit] = self._fanout.get(bit, 0) + 1
        for _, bits in netlist.outputs:
            for bit in bits:
                self._fanout[bit] = self._fanout.get(bit, 0) + 1

    # -- delay tables ----------------------------------------------------

    def cell_delay(self, cell: Cell) -> int:
        if cell.kind.startswith("LUT"):
            return self.delays.lut_logic
        if cell.kind == "CARRY8":
            return self.delays.carry_per_bit * 8
        if cell.kind == "DSP48E2":
            return self._dsp_comb_delay(cell)
        raise SimulationError(f"no delay model for {cell.kind!r}")

    def _dsp_comb_delay(self, cell: Cell) -> int:
        op = str(cell.params.get("OP", "ADD"))
        simd = str(cell.params.get("USE_SIMD", "ONE48"))
        if op == "MULADD":
            return self.delays.dsp_muladd
        if op == "MUL":
            return self.delays.dsp_mul
        if simd != "ONE48":
            return self.delays.dsp_add_simd
        return self.delays.dsp_add

    def clk_to_q(self, cell: Cell) -> int:
        if cell.kind == "FDRE":
            return self.delays.ff_clk_to_q
        if cell.kind == "RAMB18E2":
            return self.delays.bram_clk_to_q
        return self.delays.dsp_clk_to_q

    def setup(self, cell: Cell) -> int:
        if cell.kind == "FDRE":
            return self.delays.ff_setup
        if cell.kind == "RAMB18E2":
            return self.delays.bram_setup
        return self.delays.dsp_setup

    def net_delay(
        self, bit: int, producer: Optional[Cell], consumer: Cell, pin: str
    ) -> int:
        if producer is None:
            return self.delays.io_net + self.delays.fanout_delay(
                self._fanout.get(bit, 1)
            )
        if pin == "CI" and producer.kind == "CARRY8":
            return 0
        if pin == "PCIN" and producer.kind == "DSP48E2":
            return self.delays.cascade_net
        distance = _distance(producer.position(), consumer.position())
        return self.delays.net_delay(distance) + self.delays.fanout_delay(
            self._fanout.get(bit, 1)
        )

    # -- arrival propagation ----------------------------------------------

    def bit_arrival(self, bit: int, consumer: Cell, pin: str) -> Tuple[int, Tuple[str, ...]]:
        producer = self.drivers.get(bit)
        if producer is None:
            if bit in self.input_bits:
                route = self.net_delay(bit, None, consumer, pin)
                return (route, ("<input>",))
            return (0, ("<const>",))  # constant rails
        route = self.net_delay(bit, producer, consumer, pin)
        if producer.is_sequential:
            launch = self.clk_to_q(producer)
            return (launch + route, (producer.name,))
        arrival, path = self.cell_arrival(producer)
        return (arrival + route, path)

    def cell_arrival(self, cell: Cell) -> Tuple[int, Tuple[str, ...]]:
        """Arrival time at a combinational cell's outputs."""
        key = id(cell)
        cached = self._arrival.get(key)
        if cached is not None:
            return cached
        worst = 0
        worst_path: Tuple[str, ...] = ()
        for pin, bits in cell.inputs.items():
            for bit in bits:
                arrival, path = self.bit_arrival(bit, cell, pin)
                if arrival > worst:
                    worst = arrival
                    worst_path = path
        total = worst + self.cell_delay(cell)
        result = (total, worst_path + (cell.name,))
        self._arrival[key] = result
        return result

    def analyze(self) -> TimingReport:
        best: Tuple[int, str, Tuple[str, ...]] = (0, "<none>", ())

        # Paths ending at flip-flop/BRAM input pins.  (Registered DSPs
        # are handled below: their inputs cross the DSP's internal
        # combinational logic before reaching the P register.)
        for cell in self.netlist.cells:
            if not cell.is_sequential or cell.kind == "DSP48E2":
                continue
            for pin, bits in cell.inputs.items():
                for bit in bits:
                    arrival, path = self.bit_arrival(bit, cell, pin)
                    total = arrival + self.setup(cell)
                    if total > best[0]:
                        best = (total, cell.name, path + (cell.name,))

        # Paths ending at output ports.
        fake_sink = Cell(kind="LUT1", name="<output>")
        for name, bits in self.netlist.outputs:
            for bit in bits:
                arrival, path = self.bit_arrival(bit, fake_sink, "D")
                if arrival > best[0]:
                    best = (arrival, f"<output {name}>", path)

        # Registered DSPs: a pin that lands in an input pipeline
        # register (AREG/BREG/CREG, or the CE control) ends its path at
        # that register; an unregistered data pin crosses the internal
        # combinational logic before reaching PREG.  When input
        # registers are in play, the internal register-to-register path
        # (the slice's rated speed) is also a candidate.
        for cell in self.netlist.cells:
            if cell.kind != "DSP48E2" or not cell.is_sequential:
                continue
            registered = set(dsp_registered_pins(cell.params))
            registered.add("CE")
            for pin, bits in cell.inputs.items():
                through = (
                    0 if pin in registered else self._dsp_comb_delay(cell)
                )
                for bit in bits:
                    arrival, path = self.bit_arrival(bit, cell, pin)
                    total = arrival + through + self.setup(cell)
                    if total > best[0]:
                        best = (total, cell.name, path + (cell.name,))
            if registered - {"CE"}:
                internal = self._dsp_comb_delay(cell) + self.setup(cell)
                if internal > best[0]:
                    best = (internal, cell.name, (cell.name, cell.name))

        critical, endpoint, path = best
        critical = max(critical, 1)
        return TimingReport(
            critical_ps=critical,
            fmax_mhz=1_000_000.0 / critical,
            endpoint=endpoint,
            path=path,
        )


def analyze_netlist(
    netlist: Netlist, delays: DelayModel = DEFAULT_DELAYS
) -> TimingReport:
    """Compute the critical path of a placed netlist."""
    return _Analyzer(netlist, delays).analyze()
