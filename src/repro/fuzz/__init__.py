"""Differential fuzzing of the toolchain.

The paper's related work highlights fuzzing as the way bugs are found
in FPGA toolchains (Herklotz & Wickerson, FPGA'20, cited as [20]);
this package ships that capability for the reproduction itself: a
seeded random generator of well-typed Reticle programs and a runner
that compiles each through every flow — the Reticle pipeline and the
vendor simulator, with and without hints — and differentially checks
all results against the reference interpreter.

Usable as a library or from the CLI::

    python -m repro fuzz --iterations 50 --seed 7
"""

from repro.fuzz.generator import (
    ProgramGenerator,
    device_filling_func,
    edit_one_tree,
    format_histogram,
    program_histogram,
    random_func,
    random_trace,
)
from repro.fuzz.runner import FuzzOutcome, FuzzReport, run_fuzz

__all__ = [
    "ProgramGenerator",
    "device_filling_func",
    "edit_one_tree",
    "format_histogram",
    "program_histogram",
    "random_func",
    "random_trace",
    "FuzzOutcome",
    "FuzzReport",
    "run_fuzz",
]
