"""Seeded random generation of well-typed Reticle programs.

Independent of hypothesis (so it works in production tooling and the
CLI): a plain ``random.Random`` drives construction of acyclic
A-normal-form functions over the types and operations the UltraScale
target library covers, plus matching random input traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.ast import CompInstr, Func, Instr, Port, Res, WireInstr
from repro.ir.ops import CompOp, WireOp
from repro.ir.trace import Trace, Value
from repro.ir.types import Bool, Int, Ty, Vec

SCALAR_WIDTHS = (4, 8, 12, 16)
VEC_SHAPES = ((8, 4), (12, 4), (8, 2), (16, 2))

ALL_TYPES: Tuple[Ty, ...] = (
    (Bool(),)
    + tuple(Int(width) for width in SCALAR_WIDTHS)
    + tuple(Vec(Int(elem), lanes) for elem, lanes in VEC_SHAPES)
)

_CHOICES = (
    "arith",
    "logic",
    "cmp",
    "mux",
    "reg",
    "shift",
    "const",
    "not",
    "slice",
    "cat",
    "ram",
)


def _target_ram_types(target_name: str) -> Tuple[Ty, ...]:
    """The RAM data types every named target can map (addr width 4).

    ``"all"`` intersects over the whole registry, so a program meant
    for multi-target differential fuzzing only contains memories each
    target describes (ECP5 has none, iCE40's EBR is byte-wide).  For
    the default UltraScale target this is exactly the historical
    ``(i8, i16)`` pair, so default-target generation is byte-identical
    to what it was before targets were a parameter.
    """
    # Local import: the generator stays importable without the
    # compiler stack until a target actually needs resolving.
    from repro.compiler import registered_targets, resolve_target

    names = (
        registered_targets() if target_name == "all" else (target_name,)
    )
    ram_types: List[Ty] = [Int(8), Int(16)]
    for name in names:
        target, _ = resolve_target(name)
        ram_types = [
            ty for ty in ram_types if target.defs_rooted_at(CompOp.RAM, ty)
        ]
    return tuple(ram_types)


@dataclass
class ProgramGenerator:
    """Reproducible random program/trace factory.

    ``target_name`` caps the generated op mix to what that target (or,
    for ``"all"``, every registered target) can map: the ``ram``
    choice disappears when the target describes no block RAM, and RAM
    data widths shrink to the supported ones.  Everything else in the
    frontend op mix is target-independent — unmappable multiplies are
    the *lowering's* job, not the generator's.
    """

    seed: int = 0
    max_instrs: int = 12
    target_name: str = "ultrascale"
    _rng: random.Random = field(init=False, repr=False)
    _choices: Tuple[str, ...] = field(init=False, repr=False)
    _ram_types: Tuple[Ty, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._ram_types = _target_ram_types(self.target_name)
        self._choices = (
            _CHOICES
            if self._ram_types
            else tuple(c for c in _CHOICES if c != "ram")
        )

    # -- helpers ---------------------------------------------------------

    def _value(self, ty: Ty) -> Value:
        width = ty.lane_type().width
        lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
        if isinstance(ty, Bool):
            return self._rng.randint(0, 1)
        if ty.is_vector:
            return tuple(
                self._rng.randint(lo, hi) for _ in range(ty.lanes)
            )
        return self._rng.randint(lo, hi)

    def _const_value(self, ty: Ty) -> int:
        width = ty.lane_type().width
        if isinstance(ty, Bool):
            return self._rng.randint(0, 1)
        return self._rng.randint(-(1 << (width - 1)), (1 << width) - 1)

    # -- program construction --------------------------------------------

    def func(self, name: str = "fuzz") -> Func:
        """Generate one well-typed, acyclic function."""
        rng = self._rng
        pool: Dict[str, Ty] = {"en": Bool()}
        inputs: List[Port] = [Port("en", Bool())]
        counter = [0]

        def fresh() -> str:
            counter[0] += 1
            return f"v{counter[0]}"

        for _ in range(rng.randint(1, 4)):
            ty = rng.choice(ALL_TYPES)
            port = Port(fresh(), ty)
            inputs.append(port)
            pool[port.name] = ty

        def vars_of(ty: Ty) -> List[str]:
            return [var for var, t in pool.items() if t == ty]

        def pick_type(predicate) -> Optional[Ty]:
            present = sorted(
                {t for t in pool.values() if predicate(t)}, key=str
            )
            return rng.choice(present) if present else None

        instrs: List[Instr] = []
        for _ in range(rng.randint(1, self.max_instrs)):
            made = self._make_instr(rng, fresh, pool, vars_of, pick_type)
            if made is not None:
                instrs.append(made)
                pool[made.dst] = made.ty

        if not instrs:
            instrs.append(
                WireInstr(
                    dst="c0", ty=Int(8), attrs=(1,), args=(), op=WireOp.CONST
                )
            )
            pool["c0"] = Int(8)

        defined = [instr.dst for instr in instrs]
        picks = {defined[-1]}
        for _ in range(rng.randint(0, 2)):
            picks.add(rng.choice(defined))
        outputs = tuple(Port(name, pool[name]) for name in sorted(picks))
        return Func(
            name=name,
            inputs=tuple(inputs),
            outputs=outputs,
            instrs=tuple(instrs),
        )

    def _make_instr(self, rng, fresh, pool, vars_of, pick_type):
        choice = rng.choice(self._choices)
        dst = fresh()
        if choice == "const":
            ty = rng.choice(ALL_TYPES)
            return WireInstr(
                dst=dst,
                ty=ty,
                attrs=(self._const_value(ty),),
                args=(),
                op=WireOp.CONST,
            )
        if choice == "arith":
            ty = pick_type(lambda t: not isinstance(t, Bool))
            if ty is None:
                return None
            ops = [CompOp.ADD, CompOp.SUB]
            if isinstance(ty, Int) and ty.width <= 8:
                ops.append(CompOp.MUL)
            return CompInstr(
                dst=dst,
                ty=ty,
                attrs=(),
                args=(rng.choice(vars_of(ty)), rng.choice(vars_of(ty))),
                op=rng.choice(ops),
                res=Res.ANY,
            )
        if choice == "logic":
            ty = pick_type(lambda t: True)
            op = rng.choice([CompOp.AND, CompOp.OR, CompOp.XOR])
            return CompInstr(
                dst=dst,
                ty=ty,
                attrs=(),
                args=(rng.choice(vars_of(ty)), rng.choice(vars_of(ty))),
                op=op,
                res=Res.ANY,
            )
        if choice == "not":
            ty = pick_type(lambda t: True)
            return CompInstr(
                dst=dst,
                ty=ty,
                attrs=(),
                args=(rng.choice(vars_of(ty)),),
                op=CompOp.NOT,
                res=Res.ANY,
            )
        if choice == "cmp":
            ty = pick_type(lambda t: isinstance(t, Int))
            if ty is None:
                return None
            op = rng.choice(
                [CompOp.EQ, CompOp.NEQ, CompOp.LT, CompOp.GT, CompOp.LE,
                 CompOp.GE]
            )
            return CompInstr(
                dst=dst,
                ty=Bool(),
                attrs=(),
                args=(rng.choice(vars_of(ty)), rng.choice(vars_of(ty))),
                op=op,
                res=Res.ANY,
            )
        if choice == "mux":
            ty = pick_type(lambda t: True)
            conds = vars_of(Bool())
            if not conds:
                return None
            return CompInstr(
                dst=dst,
                ty=ty,
                attrs=(),
                args=(
                    rng.choice(conds),
                    rng.choice(vars_of(ty)),
                    rng.choice(vars_of(ty)),
                ),
                op=CompOp.MUX,
                res=Res.ANY,
            )
        if choice == "reg":
            ty = pick_type(lambda t: True)
            return CompInstr(
                dst=dst,
                ty=ty,
                attrs=(self._const_value(ty),),
                args=(rng.choice(vars_of(ty)), "en"),
                op=CompOp.REG,
                res=Res.ANY,
            )
        if choice == "shift":
            ty = pick_type(lambda t: isinstance(t, Int))
            if ty is None:
                return None
            op = rng.choice([WireOp.SLL, WireOp.SRL, WireOp.SRA])
            return WireInstr(
                dst=dst,
                ty=ty,
                attrs=(rng.randint(0, ty.width),),
                args=(rng.choice(vars_of(ty)),),
                op=op,
            )
        if choice == "slice":
            ty = pick_type(lambda t: isinstance(t, Vec))
            if ty is None:
                return None
            lane = rng.randrange(ty.lanes)
            return WireInstr(
                dst=dst,
                ty=ty.lane_type(),
                attrs=(lane,),
                args=(rng.choice(vars_of(ty)),),
                op=WireOp.SLICE,
            )
        if choice == "ram":
            # Needs an i4 address and a target-supported data value.
            addr_candidates = vars_of(Int(4))
            data_ty = rng.choice(list(self._ram_types))
            data_candidates = vars_of(data_ty)
            bools = vars_of(Bool())
            if not (addr_candidates and data_candidates and bools):
                return None
            return CompInstr(
                dst=dst,
                ty=data_ty,
                attrs=(4,),
                args=(
                    rng.choice(addr_candidates),
                    rng.choice(data_candidates),
                    rng.choice(bools),
                    rng.choice(bools),
                ),
                op=CompOp.RAM,
                res=Res.ANY,
            )
        if choice == "cat":
            # Pack scalars into a supported vector shape.
            for elem, lanes in VEC_SHAPES:
                candidates = vars_of(Int(elem))
                if candidates:
                    return WireInstr(
                        dst=dst,
                        ty=Vec(Int(elem), lanes),
                        attrs=(),
                        args=tuple(
                            rng.choice(candidates) for _ in range(lanes)
                        ),
                        op=WireOp.CAT,
                    )
            return None
        return None  # pragma: no cover

    def trace(self, func: Func, steps: Optional[int] = None) -> Trace:
        """Generate a random input trace for ``func``."""
        count = steps if steps is not None else self._rng.randint(1, 8)
        return Trace(
            {
                port.name: [self._value(port.ty) for _ in range(count)]
                for port in func.inputs
            }
        )


#: Calibrated netlist-cell costs on the UltraScale target: an i8 add
#: lowers to eight LUTs plus one CARRY8, a register to eight FDREs,
#: and a DSP multiply or block-RAM port to one hardened cell each.
CELLS_PER_ADD = 9
CELLS_PER_REG = 8
CELLS_PER_MUL = 1
CELLS_PER_RAM = 1

#: Hardened-resource caps for device-filling programs, kept below the
#: xczu3eg's 360 DSP / 216 BRAM slices so the mix always places.
DEVICE_FILL_DSP_CAP = 300
DEVICE_FILL_BRAM_CAP = 180


def _device_fill_caps(target_name: str, cells: int) -> Tuple[int, int]:
    """(muls, rams) for a device-filling mix on the named target(s).

    Gated twice: by the *library* (a target with no ``mul`` or ``ram``
    pattern at i8 contributes none of that kind — an unmappable op
    would make the whole fill program fail selection) and by the
    *device* (hardened-column capacity, with the same 5/6 headroom the
    historical UltraScale caps encoded, so the mix always places).
    ``"all"`` intersects the registry, as the same program must fit
    every fabric.
    """
    from repro.compiler import registered_targets, resolve_target
    from repro.prims import Prim

    names = (
        registered_targets() if target_name == "all" else (target_name,)
    )
    muls = min(DEVICE_FILL_DSP_CAP, cells // 100)
    rams = min(DEVICE_FILL_BRAM_CAP, cells // 200)
    for name in names:
        target, device = resolve_target(name)
        if not target.defs_rooted_at(CompOp.MUL, Int(8)):
            muls = 0
        elif device.dsp_capacity():
            muls = min(muls, (device.dsp_capacity() * 5) // 6)
        if not target.defs_rooted_at(CompOp.RAM, Int(8)):
            rams = 0
        else:
            rams = min(rams, (device.slice_capacity(Prim.BRAM) * 5) // 6)
    return muls, rams


def device_filling_func(
    seed: int,
    cells: int,
    name: str = "fill",
    target_name: str = "ultrascale",
) -> Func:
    """A device-scale program of roughly ``cells`` netlist cells.

    Unlike :meth:`ProgramGenerator.func`, every instruction reads only
    function inputs, so the program is thousands of *independent*
    single-node trees — the shape that stresses placement scale (one
    placement cluster per instruction, no cover depth).  The mix is
    mostly LUT-bound i8 adds with registers sprinkled in, plus DSP
    multiplies and block-RAM ports capped below the hardened-column
    capacity of ``target_name``'s device (:func:`_device_fill_caps`);
    instruction order is seed-shuffled so resource kinds interleave
    the way real programs do.
    """
    rng = random.Random(seed)
    inputs = [
        Port("en", Bool()),
        Port("we", Bool()),
        Port("addr", Int(4)),
    ] + [Port(f"a{i}", Int(8)) for i in range(4)]
    scalars = [f"a{i}" for i in range(4)]

    muls, rams = _device_fill_caps(target_name, cells)
    ops: List[str] = ["mul"] * muls + ["ram"] * rams
    remaining = cells - muls * CELLS_PER_MUL - rams * CELLS_PER_RAM
    while remaining > 0:
        if len(ops) % 8 == 7:  # one register per eight LUT-bound ops
            ops.append("reg")
            remaining -= CELLS_PER_REG
        else:
            ops.append("add")
            remaining -= CELLS_PER_ADD
    rng.shuffle(ops)

    instrs: List[Instr] = []
    last_of: Dict[str, str] = {}
    for index, op in enumerate(ops):
        dst = f"v{index}"
        a, b = rng.choice(scalars), rng.choice(scalars)
        if op == "add":
            instr = CompInstr(
                dst=dst, ty=Int(8), attrs=(), args=(a, b),
                op=CompOp.ADD, res=Res.ANY,
            )
        elif op == "reg":
            instr = CompInstr(
                dst=dst, ty=Int(8), attrs=(0,), args=(a, "en"),
                op=CompOp.REG, res=Res.ANY,
            )
        elif op == "mul":
            instr = CompInstr(
                dst=dst, ty=Int(8), attrs=(), args=(a, b),
                op=CompOp.MUL, res=Res.ANY,
            )
        else:  # ram
            instr = CompInstr(
                dst=dst, ty=Int(8), attrs=(4,), args=("addr", a, "we", "en"),
                op=CompOp.RAM, res=Res.ANY,
            )
        instrs.append(instr)
        last_of[op] = dst

    outputs = tuple(
        Port(dst, Int(8)) for dst in sorted(last_of.values())
    )
    return Func(
        name=name,
        inputs=tuple(inputs),
        outputs=outputs,
        instrs=tuple(instrs),
    )


def edit_one_tree(func: Func) -> Func:
    """``func`` with one appended independent i8 add.

    The canonical one-tree edit for incremental-recompilation tests
    and benchmarks: the new instruction reads only existing i8 inputs,
    so every other tree — its cover digest and its placement cluster
    shape — is untouched.  Only the compile-cache key and the one new
    cluster change.
    """
    scalars = [port.name for port in func.inputs if port.ty == Int(8)]
    if not scalars:
        raise ValueError(f"{func.name!r} has no i8 inputs to edit with")
    a = scalars[0]
    b = scalars[1] if len(scalars) > 1 else scalars[0]
    extra = CompInstr(
        dst="edit0", ty=Int(8), attrs=(), args=(a, b),
        op=CompOp.ADD, res=Res.ANY,
    )
    return Func(
        name=func.name,
        inputs=func.inputs,
        outputs=func.outputs,
        instrs=func.instrs + (extra,),
    )


def program_histogram(func: Func, target=None) -> Dict[str, int]:
    """The LUT/DSP/BRAM shape of ``func`` after instruction selection.

    Returns per-primitive assembly-instruction counts plus an
    estimated netlist-cell total (a LUT instruction costs one cell per
    output bit plus a carry cell for add/sub; each DSP or BRAM
    instruction is one hardened cell).  The fuzz runner prints this
    next to a failure's replay line so a failing device-scale program
    is recognizable without recompiling it.
    """
    # Local imports: the generator stays importable without pulling
    # the whole selection stack until a histogram is actually needed.
    from repro.asm.ast import AsmInstr
    from repro.isel.select import select
    from repro.prims import Prim

    if target is None:
        from repro.compiler import resolve_target

        target, _ = resolve_target("ultrascale")
    asm = select(func, target)
    counts = {"lut": 0, "dsp": 0, "bram": 0, "wire": 0, "est_cells": 0}
    for instr in asm.instrs:
        if not isinstance(instr, AsmInstr):
            counts["wire"] += 1
            continue
        asm_def = target.get(instr.op)
        prim = asm_def.prim if asm_def is not None else Prim.LUT
        if prim is Prim.DSP:
            counts["dsp"] += 1
            counts["est_cells"] += 1
        elif prim is Prim.BRAM:
            counts["bram"] += 1
            counts["est_cells"] += 1
        else:
            counts["lut"] += 1
            carry = asm_def is not None and asm_def.root().op in (
                CompOp.ADD,
                CompOp.SUB,
            )
            counts["est_cells"] += instr.ty.width + (1 if carry else 0)
    return counts


def format_histogram(hist: Dict[str, int]) -> str:
    """One replay-annotation line for :func:`program_histogram`."""
    return (
        f"~{hist['est_cells']} cells "
        f"({hist['lut']} LUT / {hist['dsp']} DSP / {hist['bram']} BRAM "
        f"ops, {hist['wire']} wires)"
    )


def random_func(seed: int, max_instrs: int = 12) -> Func:
    """One-shot random function generation."""
    return ProgramGenerator(seed=seed, max_instrs=max_instrs).func()


def random_trace(func: Func, seed: int, steps: int = 6) -> Trace:
    """One-shot random trace generation."""
    return ProgramGenerator(seed=seed).trace(func, steps=steps)
