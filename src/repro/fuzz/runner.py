"""The differential fuzz runner.

For each seed: generate a program and trace, compute the reference
output with the interpreter, then push the program through each flow
under test and compare.  Flows:

* ``reticle`` — the full pipeline (selection, cascading, placement,
  code generation), simulating the generated netlist;
* ``reticle-text`` — additionally round-trips the emitted structural
  Verilog through the parser and netlist reconstruction;
* ``reticle-cached`` — compiles twice through a shared
  content-addressed compile cache (cold, then warm) and demands the
  two emit byte-identical Verilog before simulating the cached
  netlist — a differential check on the cache itself;
* ``vendor-base`` / ``vendor-hint`` — the vendor simulator's synthesis
  (plus LUT packing) without placement.

Any mismatch or unexpected exception is reported with its seed so it
can be replayed deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.codegen.verilog_emit import generate_verilog
from repro.compiler import ReticleCompiler
from repro.errors import ReticleError
from repro.fuzz.generator import (
    ProgramGenerator,
    device_filling_func,
    format_histogram,
    program_histogram,
)
from repro.ir.ast import Func
from repro.ir.interp import Interpreter
from repro.ir.trace import Trace
from repro.netlist.from_verilog import netlist_from_verilog
from repro.netlist.sim import NetlistSimulator
from repro.passes import CompileCache
from repro.vendor.packing import pack_luts
from repro.vendor.synth import VendorOptions, VendorSynthesizer

DEFAULT_FLOWS = (
    "reticle",
    "reticle-text",
    "reticle-cached",
    "vendor-base",
    "vendor-hint",
)

#: The vendor synthesizer and packer model Xilinx primitives, so the
#: vendor flows only run against the UltraScale target.
VENDOR_FLOWS = ("vendor-base", "vendor-hint")


def default_flows(target_name: str) -> tuple:
    """The flows a fuzz session runs against one named target."""
    if target_name == "ultrascale":
        return DEFAULT_FLOWS
    return tuple(f for f in DEFAULT_FLOWS if f not in VENDOR_FLOWS)


@dataclass(frozen=True)
class FuzzOutcome:
    """One (seed, flow) result."""

    seed: int
    flow: str
    status: str            # "ok" | "mismatch" | "error"
    detail: str = ""
    #: The failing program's LUT/DSP/BRAM shape (failures only), so a
    #: device-scale failure is recognizable without recompiling it.
    histogram: str = ""


@dataclass
class FuzzReport:
    """Aggregate over a fuzzing session.

    The session's base ``seed`` and ``max_instrs`` are recorded so any
    failure is replayable: each failing outcome carries its program
    seed, and :meth:`replay_command` renders the exact CLI invocation
    that regenerates that one program deterministically.
    """

    iterations: int = 0
    seed: int = 0
    max_instrs: int = 12
    #: Device-filling mode: target netlist cells per program (0 = the
    #: usual small random programs).
    cells: int = 0
    #: Target family fuzzed; "all" = multi-target differential mode.
    target: str = "ultrascale"
    outcomes: List[FuzzOutcome] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def failures(self) -> List[FuzzOutcome]:
        return [o for o in self.outcomes if o.status != "ok"]

    @property
    def ok(self) -> bool:
        return not self.failures

    def replay_command(self, outcome: FuzzOutcome) -> str:
        """The CLI invocation that replays one failing seed."""
        command = (
            f"reticle fuzz --seed {outcome.seed} --iterations 1 "
            f"--max-instrs {self.max_instrs}"
        )
        if self.cells:
            command += f" --cells {self.cells}"
        if self.target != "ultrascale":
            command += f" --target {self.target}"
        return command

    def summary(self) -> str:
        checked = len(self.outcomes)
        failed = len(self.failures)
        text = (
            f"fuzzed {self.iterations} programs, {checked} flow checks, "
            f"{failed} failures in {self.seconds:.1f}s "
            f"(base seed {self.seed})"
        )
        for outcome in self.failures[:10]:
            text += (
                f"\n  seed {outcome.seed} [{outcome.flow}] "
                f"{outcome.status}: {outcome.detail[:120]}"
            )
            if outcome.histogram:
                text += f"\n    shape: {outcome.histogram}"
            text += f"\n    replay: {self.replay_command(outcome)}"
        return text


class _Flows:
    def __init__(self, target_name: str = "ultrascale") -> None:
        from repro.compiler import resolve_target

        target, device = resolve_target(target_name)
        self.target_name = target_name
        self.compiler = ReticleCompiler(target=target, device=device)
        self.device = self.compiler.device
        self.cached_compiler = ReticleCompiler(
            target=target, device=device, cache=CompileCache()
        )

    def _types(self, func: Func) -> Dict[str, object]:
        return {p.name: p.ty for p in func.inputs + func.outputs}

    def reticle(self, func: Func, trace: Trace) -> Trace:
        result = self.compiler.compile(func)
        return NetlistSimulator(result.netlist, self._types(func)).run(trace)

    def reticle_text(self, func: Func, trace: Trace) -> Trace:
        result = self.compiler.compile(func)
        rebuilt = netlist_from_verilog(generate_verilog(result.netlist))
        return NetlistSimulator(rebuilt, self._types(func)).run(trace)

    def reticle_cached(self, func: Func, trace: Trace) -> Trace:
        cold = self.cached_compiler.compile(func)
        warm = self.cached_compiler.compile(func)
        if not warm.cached:
            raise ReticleError("recompile missed the compile cache")
        if generate_verilog(warm.netlist) != generate_verilog(cold.netlist):
            raise ReticleError("cache hit emitted different Verilog")
        return NetlistSimulator(warm.netlist, self._types(func)).run(trace)

    def vendor(self, func: Func, trace: Trace, hints: bool) -> Trace:
        netlist, _ = VendorSynthesizer(
            self.device, VendorOptions(use_dsp_hints=hints)
        ).synthesize(func)
        pack_luts(netlist, passes=2)
        return NetlistSimulator(netlist, self._types(func)).run(trace)

    def run(self, flow: str, func: Func, trace: Trace) -> Trace:
        if flow == "reticle":
            return self.reticle(func, trace)
        if flow == "reticle-text":
            return self.reticle_text(func, trace)
        if flow == "reticle-cached":
            return self.reticle_cached(func, trace)
        if flow == "vendor-base":
            return self.vendor(func, trace, hints=False)
        if flow == "vendor-hint":
            return self.vendor(func, trace, hints=True)
        raise ReticleError(f"unknown fuzz flow {flow!r}")


def _failure_shape(runner: "_Flows", func: Func) -> str:
    """The failing program's shape line; never raises (best-effort)."""
    try:
        return format_histogram(
            program_histogram(func, runner.compiler.target)
        )
    except Exception:  # noqa: BLE001 - annotation only, never masks
        return ""


def _diverging_outputs(expected: Trace, actual: Trace) -> str:
    """The output names whose value streams differ, for mismatches."""
    names = sorted(
        name
        for name in set(expected.names()) | set(actual.names())
        if (
            name not in expected
            or name not in actual
            or expected[name] != actual[name]
        )
    )
    return ", ".join(names) if names else "(trace shape)"


def run_fuzz(
    iterations: int = 25,
    seed: int = 0,
    flows: Optional[tuple] = None,
    max_instrs: int = 12,
    cells: int = 0,
    progress: Optional[Callable[[str], None]] = None,
    target: str = "ultrascale",
) -> FuzzReport:
    """Fuzz ``iterations`` programs across ``flows``.

    With ``cells > 0`` the programs are device-filling
    (:func:`device_filling_func` targeting that many netlist cells)
    instead of small random ones — the differential oracle then
    exercises placement and codegen at scale, so expect to pair a
    large ``cells`` with ``iterations=1`` and few flows.

    ``target`` picks the fabric; ``flows`` defaults to every flow that
    applies to it (the vendor flows model Xilinx primitives, so they
    only run on UltraScale).  With ``target="all"`` each random
    program — generated over the op mix every registered target can
    map — compiles to *every* target, and each target's netlist
    simulation is differentially checked against the one IR
    interpreter run: a divergence is reported per target (flow
    ``reticle@NAME``) naming the diverging outputs and the program's
    tree shape.
    """
    multi = target == "all"
    if multi:
        from repro.compiler import registered_targets

        names = registered_targets()
        runners = {name: _Flows(name) for name in names}
        runner = None
        flows = tuple(f"reticle@{name}" for name in names)
    else:
        runner = _Flows(target)
        if flows is None:
            flows = default_flows(target)
    report = FuzzReport(
        iterations=iterations, seed=seed, max_instrs=max_instrs,
        cells=cells, target=target,
    )
    start = time.perf_counter()
    for index in range(iterations):
        program_seed = seed + index
        generator = ProgramGenerator(
            seed=program_seed, max_instrs=max_instrs, target_name=target
        )
        if cells > 0:
            func = device_filling_func(
                seed=program_seed, cells=cells, name=f"fuzz{program_seed}",
                target_name=target,
            )
            trace = generator.trace(func, steps=2)
        else:
            func = generator.func(name=f"fuzz{program_seed}")
            trace = generator.trace(func)
        expected = Interpreter(func).run(trace)
        for flow in flows:
            if multi:
                flow_runner = runners[flow.partition("@")[2]]
                flow_name = "reticle"
            else:
                flow_runner, flow_name = runner, flow
            try:
                actual = flow_runner.run(flow_name, func, trace)
            except Exception as error:  # noqa: BLE001 - reported, not hidden
                report.outcomes.append(
                    FuzzOutcome(
                        seed=program_seed,
                        flow=flow,
                        status="error",
                        detail=f"{type(error).__name__}: {error}",
                        histogram=_failure_shape(flow_runner, func),
                    )
                )
                continue
            if actual == expected:
                report.outcomes.append(
                    FuzzOutcome(seed=program_seed, flow=flow, status="ok")
                )
            else:
                report.outcomes.append(
                    FuzzOutcome(
                        seed=program_seed,
                        flow=flow,
                        status="mismatch",
                        detail=(
                            f"diverging outputs: "
                            f"{_diverging_outputs(expected, actual)}; "
                            f"expected {expected.to_dict()} "
                            f"got {actual.to_dict()}"
                        ),
                        histogram=_failure_shape(flow_runner, func),
                    )
                )
        if progress is not None:
            progress(f"seed {program_seed} done")
    report.seconds = time.perf_counter() - start
    return report
