"""Top-level instruction selection: IR function -> assembly function.

:class:`Selector` prepares a target's pattern index once and lowers
any number of functions against it.  The emitted assembly program has
unknown locations (coordinate wildcards) which the layout optimizer
and the placer resolve later (Figure 7, stages c-e).

Cold selection scales with the number of *distinct* tree shapes, not
tree instances: every subject tree is hash-consed to a structural
digest (:func:`repro.ir.dfg.tree_digest`), the tree-covering DP runs
once per distinct digest, and every further instance replays the
memoized cover against its concrete operand names
(:func:`repro.isel.cover.replay_cover`).  Replay preserves the DP's
tie-breaking bit for bit, so emitted assembly is byte-identical to
covering every tree from scratch — ``memo=False`` keeps the naive
path for differential testing.  With ``jobs > 1`` the distinct trees
fan out over a shared thread pool in deterministic order.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.asm.ast import AsmFunc, AsmInstr, AsmOrWire
from repro.asm.coords import Loc, WILDCARD
from repro.ir.ast import Func, WireInstr
from repro.ir.dfg import HashConser, tree_digest
from repro.ir.lower import lower_unsupported_muls
from repro.ir.typecheck import typecheck_func
from repro.ir.wellformed import check_well_formed
from repro.isel.cover import CoverResult, cover_tree, replay_cover
from repro.isel.partition import SubjectTree, partition
from repro.obs import NULL_TRACER
from repro.prims import Prim
from repro.tdl.ast import Target
from repro.tdl.pattern import PatternIndex

# With area measured in primitive units (LUTs for lut defs, slices for
# dsp defs), this weight makes one DSP slice cost as much as 16 LUTs.
# The resulting policy matches vendor cost models (Section 2): small
# scalar adds stay on abundant LUTs, while multiplies, fused
# multiply-adds, and SIMD vector ops win on DSPs.
DEFAULT_DSP_WEIGHT = 16.0


@dataclass
class Selector:
    """Reusable instruction selector for one target.

    ``memo`` enables the cross-tree cover memo (on by default; output
    is byte-identical either way).  ``jobs > 1`` covers distinct trees
    on a lazily built thread pool shared across compiles — results
    are collected in submission order, so selection stays
    deterministic.  Both the index and the pool are safe under
    concurrent ``compile_prog`` workers: the index is read-only after
    construction and executors are thread-safe.
    """

    target: Target
    dsp_weight: float = DEFAULT_DSP_WEIGHT
    memo: bool = True
    jobs: int = 1
    _index: PatternIndex = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._index = PatternIndex.from_target(self.target)

    def _executor(self) -> Optional[ThreadPoolExecutor]:
        """The shared selection thread pool (lazily built, reused)."""
        if self.jobs <= 1:
            return None
        pool = self.__dict__.get("_pool")
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=self.jobs, thread_name_prefix="isel"
            )
            # Benign race: two threads may build two pools; the loser
            # is dropped and garbage-collected with idle threads.
            pool = self.__dict__.setdefault("_pool", pool)
        return pool

    @property
    def prim_weight(self) -> Dict[Prim, float]:
        # BRAMs have no LUT-mapped alternative in the library, so
        # their weight only scales reported costs.
        return {
            Prim.LUT: 1.0,
            Prim.DSP: self.dsp_weight,
            Prim.BRAM: 4 * self.dsp_weight,
        }

    def _cover_batch(
        self,
        trees: List[SubjectTree],
        weight: Dict[Prim, float],
        types: Dict[str, object],
    ) -> List[CoverResult]:
        """Cover ``trees`` from scratch, fanning out when ``jobs > 1``.

        Results come back in input order regardless of completion
        order, and a :class:`~repro.errors.SelectionError` raised by
        any worker propagates from its future.
        """
        pool = self._executor()
        if pool is None or len(trees) <= 1:
            return [
                cover_tree(tree, self._index, weight, types)
                for tree in trees
            ]
        futures = [
            pool.submit(cover_tree, tree, self._index, weight, types)
            for tree in trees
        ]
        return [future.result() for future in futures]

    def lower(self, func: Func, tracer=NULL_TRACER) -> Func:
        """Target-aware pre-selection lowering (shift-add multiply).

        Returns ``func`` unchanged (same object) when the target maps
        every operation directly; the rewritten function is
        re-validated before covering, so a lowering bug surfaces as a
        typed diagnostic, not a malformed cover.
        """
        lowered = lower_unsupported_muls(func, self.target, tracer=tracer)
        if lowered is not func:
            typecheck_func(lowered)
            check_well_formed(lowered)
        return lowered

    def cover(self, func: Func) -> List[CoverResult]:
        """Partition and cover ``func``; exposed for tests/diagnostics.

        With the memo enabled, trees are grouped by structural digest,
        one representative per group runs the DP, and the remaining
        instances are replayed covers (``CoverResult.replayed``); the
        returned list is always in partition order.  The function is
        lowered first (:meth:`lower`), so costs reported here match
        what :meth:`select` emits.
        """
        func = self.lower(func)
        trees = partition(func)
        weight = self.prim_weight
        types = func.defs()
        if not self.memo:
            return self._cover_batch(trees, weight, types)

        conser = HashConser()
        digests = [tree_digest(tree.root, types, conser) for tree in trees]
        representatives: Dict[str, SubjectTree] = {}
        for tree, digest in zip(trees, digests):
            representatives.setdefault(digest, tree)
        unique = list(representatives.values())
        covered = dict(
            zip(representatives, self._cover_batch(unique, weight, types))
        )
        for digest, template in covered.items():
            template.digest = digest
        results: List[CoverResult] = []
        for tree, digest in zip(trees, digests):
            template = covered[digest]
            if template.tree is tree:
                results.append(template)
            else:
                results.append(replay_cover(template, tree))
        return results

    def select(
        self, func: Func, tracer=NULL_TRACER, lineage=None
    ) -> AsmFunc:
        """Lower one IR function to assembly with unknown locations.

        ``tracer`` (any :mod:`repro.obs` tracer) receives the
        selection counters — trees partitioned, distinct tree shapes,
        cover-memo replays, DP memo-table hits, match attempts,
        index-prefilter skips, covers chosen per primitive kind — and
        the per-tree match-attempt histogram.  ``lineage`` (a
        :class:`repro.obs.provenance.Lineage`), when given, records
        which IR instructions each emitted assembly instruction
        covers, with its match cost.
        """
        typecheck_func(func)
        check_well_formed(func)
        # Lower first so the wire instructions the expansion introduces
        # (shifts, bit splats) are carried into the assembly; cover()'s
        # own lowering call is then a no-op on the same object.
        func = self.lower(func, tracer=tracer)

        covers = self.cover(func)
        tracer.count("isel.trees", len(covers))
        tracer.count(
            "isel.unique_trees",
            sum(1 for c in covers if not c.replayed),
        )
        tracer.count(
            "isel.memo_hits", sum(1 for c in covers if c.replayed)
        )
        tracer.count("isel.dp_hits", sum(c.dp_hits for c in covers))
        tracer.count(
            "isel.matches_tried", sum(c.matches_tried for c in covers)
        )
        tracer.count(
            "isel.index_skips", sum(c.index_skips for c in covers)
        )
        instrs: List[AsmOrWire] = [
            instr for instr in func.instrs if isinstance(instr, WireInstr)
        ]
        tracer.count("isel.wires", len(instrs))
        for tree_index, cover in enumerate(covers):
            tracer.observe("isel.matches_per_tree", cover.matches_tried)
            for match, match_cost in zip(cover.matches, cover.match_costs):
                asm_def = match.pattern.asm_def
                tracer.count(f"isel.covers.{asm_def.prim.value}")
                if lineage is not None:
                    lineage.record_match(
                        asm_dst=match.node.dst,
                        asm_op=match.def_name,
                        prim=asm_def.prim.value,
                        cost=match_cost,
                        tree=tree_index,
                        ir_dsts=tuple(i.dst for i in match.captured),
                        ir_ops=tuple(i.op_name for i in match.captured),
                    )
                instrs.append(
                    AsmInstr(
                        dst=match.node.dst,
                        ty=match.node.instr.ty,
                        op=match.def_name,
                        attrs=match.captured_attrs(),
                        args=match.arg_names(),
                        loc=Loc(asm_def.prim, WILDCARD, WILDCARD),
                    )
                )
        return AsmFunc(
            name=func.name,
            inputs=func.inputs,
            outputs=func.outputs,
            instrs=tuple(instrs),
        )

    def total_cost(self, func: Func) -> float:
        """The weighted-area cost of the chosen cover (for tests)."""
        return sum(cover.cost for cover in self.cover(func))


def select(
    func: Func,
    target: Target,
    dsp_weight: float = DEFAULT_DSP_WEIGHT,
    tracer=NULL_TRACER,
    lineage=None,
    memo: bool = True,
    jobs: int = 1,
) -> AsmFunc:
    """One-shot selection of ``func`` against ``target``."""
    return Selector(
        target=target, dsp_weight=dsp_weight, memo=memo, jobs=jobs
    ).select(func, tracer=tracer, lineage=lineage)
