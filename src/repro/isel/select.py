"""Top-level instruction selection: IR function -> assembly function.

:class:`Selector` prepares a target's pattern index once and lowers
any number of functions against it.  The emitted assembly program has
unknown locations (coordinate wildcards) which the layout optimizer
and the placer resolve later (Figure 7, stages c-e).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.asm.ast import AsmFunc, AsmInstr, AsmOrWire
from repro.asm.coords import Loc, WILDCARD
from repro.ir.ast import Func, WireInstr
from repro.ir.typecheck import typecheck_func
from repro.ir.wellformed import check_well_formed
from repro.isel.cover import CoverResult, cover_tree
from repro.isel.partition import partition
from repro.obs import NULL_TRACER
from repro.prims import Prim
from repro.tdl.ast import Target
from repro.tdl.pattern import Pattern, build_pattern

# With area measured in primitive units (LUTs for lut defs, slices for
# dsp defs), this weight makes one DSP slice cost as much as 16 LUTs.
# The resulting policy matches vendor cost models (Section 2): small
# scalar adds stay on abundant LUTs, while multiplies, fused
# multiply-adds, and SIMD vector ops win on DSPs.
DEFAULT_DSP_WEIGHT = 16.0


@dataclass
class Selector:
    """Reusable instruction selector for one target."""

    target: Target
    dsp_weight: float = DEFAULT_DSP_WEIGHT
    _index: Dict[Tuple[object, object], List[Pattern]] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        for asm_def in self.target:
            pattern = build_pattern(asm_def)
            root = asm_def.root()
            key = (root.op, root.ty)
            self._index.setdefault(key, []).append(pattern)
        # Prefer larger patterns on cost ties so fused instructions win
        # deterministically.
        for patterns in self._index.values():
            patterns.sort(key=lambda p: -p.size)

    @property
    def prim_weight(self) -> Dict[Prim, float]:
        # BRAMs have no LUT-mapped alternative in the library, so
        # their weight only scales reported costs.
        return {
            Prim.LUT: 1.0,
            Prim.DSP: self.dsp_weight,
            Prim.BRAM: 4 * self.dsp_weight,
        }

    def cover(self, func: Func) -> List[CoverResult]:
        """Partition and cover ``func``; exposed for tests/diagnostics."""
        trees = partition(func)
        weight = self.prim_weight
        types = func.defs()
        return [
            cover_tree(tree, self._index, weight, types) for tree in trees
        ]

    def select(
        self, func: Func, tracer=NULL_TRACER, lineage=None
    ) -> AsmFunc:
        """Lower one IR function to assembly with unknown locations.

        ``tracer`` (any :mod:`repro.obs` tracer) receives the
        selection counters — trees partitioned, DP memo-table hits,
        match attempts, covers chosen per primitive kind — and the
        per-tree match-attempt histogram.  ``lineage`` (a
        :class:`repro.obs.provenance.Lineage`), when given, records
        which IR instructions each emitted assembly instruction
        covers, with its match cost.
        """
        typecheck_func(func)
        check_well_formed(func)

        covers = self.cover(func)
        tracer.count("isel.trees", len(covers))
        tracer.count("isel.dp_hits", sum(c.dp_hits for c in covers))
        tracer.count(
            "isel.matches_tried", sum(c.matches_tried for c in covers)
        )
        instrs: List[AsmOrWire] = [
            instr for instr in func.instrs if isinstance(instr, WireInstr)
        ]
        tracer.count("isel.wires", len(instrs))
        for tree_index, cover in enumerate(covers):
            tracer.observe("isel.matches_per_tree", cover.matches_tried)
            for match, match_cost in zip(cover.matches, cover.match_costs):
                asm_def = match.pattern.asm_def
                tracer.count(f"isel.covers.{asm_def.prim.value}")
                if lineage is not None:
                    lineage.record_match(
                        asm_dst=match.node.dst,
                        asm_op=match.def_name,
                        prim=asm_def.prim.value,
                        cost=match_cost,
                        tree=tree_index,
                        ir_dsts=tuple(i.dst for i in match.captured),
                        ir_ops=tuple(i.op_name for i in match.captured),
                    )
                instrs.append(
                    AsmInstr(
                        dst=match.node.dst,
                        ty=match.node.instr.ty,
                        op=match.def_name,
                        attrs=match.captured_attrs(),
                        args=match.arg_names(),
                        loc=Loc(asm_def.prim, WILDCARD, WILDCARD),
                    )
                )
        return AsmFunc(
            name=func.name,
            inputs=func.inputs,
            outputs=func.outputs,
            instrs=tuple(instrs),
        )

    def total_cost(self, func: Func) -> float:
        """The weighted-area cost of the chosen cover (for tests)."""
        return sum(cover.cost for cover in self.cover(func))


def select(
    func: Func,
    target: Target,
    dsp_weight: float = DEFAULT_DSP_WEIGHT,
    tracer=NULL_TRACER,
    lineage=None,
) -> AsmFunc:
    """One-shot selection of ``func`` against ``target``."""
    return Selector(target=target, dsp_weight=dsp_weight).select(
        func, tracer=tracer, lineage=lineage
    )
