"""Instruction selection: lowering IR to assembly (paper Section 5.1).

The pipeline is the classic software-compiler one, applied to the
hardware domain: build the dataflow graph, partition it into trees
(cutting at registers and at values with multiple uses), then cover
each tree with target instructions using linear-time dynamic
programming over the target's pattern library — a sharp departure
from the randomized metaheuristics of traditional FPGA toolchains.
"""

from repro.isel.partition import SubjectNode, SubjectTree, partition
from repro.isel.cover import Match, CoverResult, cover_tree, replay_cover
from repro.isel.select import Selector, select

__all__ = [
    "SubjectNode",
    "SubjectTree",
    "partition",
    "Match",
    "CoverResult",
    "cover_tree",
    "replay_cover",
    "Selector",
    "select",
]
