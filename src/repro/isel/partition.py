"""Tree partitioning of the dataflow graph (paper Section 5.1).

Tree-covering algorithms need trees, but a program's dataflow graph is
a DAG (shared values) and may contain cycles (feedback through
registers).  Partitioning cuts the graph at *root* nodes — compute
instructions whose value is used more than once, or not at all inside
the function body (outputs) — so every fragment between cuts is a pure
tree.  Because well-formed programs have no combinational cycles
(Section 6.1), every cycle passes through a register and is broken by
a cut at a multiply-used value; a visited-set guard keeps the
traversal safe even for degenerate dead-code cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple, Union

from repro.ir.ast import CompInstr, Func
from repro.ir.dfg import DataflowGraph

# A child of a subject node is either a nested node or the name of a
# variable that acts as a leaf (input, wire value, or another tree's
# root).
SubjectChild = Union["SubjectNode", str]


@dataclass(frozen=True)
class SubjectNode:
    """One compute instruction inside a subject tree."""

    instr: CompInstr
    children: Tuple[SubjectChild, ...]

    @property
    def dst(self) -> str:
        return self.instr.dst

    @property
    def size(self) -> int:
        return 1 + sum(
            child.size for child in self.children if isinstance(child, SubjectNode)
        )

    def nodes(self) -> List["SubjectNode"]:
        """All nodes in this subtree, root first."""
        found = [self]
        for child in self.children:
            if isinstance(child, SubjectNode):
                found.extend(child.nodes())
        return found


@dataclass(frozen=True)
class SubjectTree:
    """A maximal tree of compute instructions rooted at a cut point."""

    root: SubjectNode

    @property
    def dst(self) -> str:
        return self.root.dst

    @property
    def size(self) -> int:
        return self.root.size


def partition(func: Func) -> List[SubjectTree]:
    """Partition ``func``'s compute instructions into subject trees.

    Every compute instruction appears in exactly one tree; wire
    instructions are never part of trees (they are area-free and pass
    through selection unchanged).
    """
    dfg = DataflowGraph.build(func)
    comp_instrs = [
        instr for instr in func.instrs if isinstance(instr, CompInstr)
    ]
    comp_by_dst: Dict[str, CompInstr] = {
        instr.dst: instr for instr in comp_instrs
    }

    claimed: Set[str] = set()

    def is_root(instr: CompInstr) -> bool:
        # A compute value stays inside a tree only when it is consumed
        # exactly once, by another compute instruction; anything else —
        # multiple uses, an output port, or a wire-instruction consumer
        # — cuts the tree here.
        if dfg.use_count(instr.dst) != 1 or dfg.is_output(instr.dst):
            return True
        consumer, _ = dfg.consumers[instr.dst][0]
        return not isinstance(consumer, CompInstr)

    def grow(instr: CompInstr, on_path: Set[str]) -> SubjectNode:
        claimed.add(instr.dst)
        children: List[SubjectChild] = []
        for arg in instr.args:
            child = comp_by_dst.get(arg)
            if (
                child is not None
                and not is_root(child)
                and child.dst not in claimed
                and child.dst not in on_path
            ):
                children.append(grow(child, on_path | {instr.dst}))
            else:
                children.append(arg)
        return SubjectNode(instr=instr, children=tuple(children))

    trees: List[SubjectTree] = []
    for instr in comp_instrs:
        if is_root(instr) and instr.dst not in claimed:
            trees.append(SubjectTree(root=grow(instr, set())))

    # Sweep for anything unclaimed (dead combinational islands feeding
    # only each other through a register): force each to be a root.
    for instr in comp_instrs:
        if instr.dst not in claimed:
            trees.append(SubjectTree(root=grow(instr, set())))

    return trees
