"""Optimal tree covering by dynamic programming (paper Section 5.1).

The selector is the linear-time tree-covering algorithm of Aho and
Ganapathi as used for code generation in software compilers: walk the
subject tree in postorder; at every node, try each target pattern
whose root matches; a pattern's cost is its own (weighted) area plus
the best cost of every subject subtree bound to one of its leaves.
Keeping the best match per node yields a minimum-cost cover of the
whole tree.

Resource annotations are *constraints*, not hints: a pattern only
matches if every subject instruction it covers is annotated ``@??`` or
with the pattern's own primitive, so an unsatisfiable annotation makes
the node uncoverable and selection fails loudly (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SelectionError
from repro.ir.ast import CompInstr, Res
from repro.isel.partition import SubjectChild, SubjectNode, SubjectTree
from repro.prims import Prim
from repro.tdl.pattern import Pattern, PatternIndex, PatternNode


@dataclass(frozen=True)
class Match:
    """A successful match of one pattern at one subject node.

    ``bindings`` maps definition input names to subject variable
    names; ``captured`` lists the subject instructions matched to the
    pattern body, in body order (their attrs parameterize the emitted
    assembly instruction); ``subtrees`` are the subject nodes bound to
    pattern leaves, which must be covered by their own matches.
    """

    pattern: Pattern
    node: SubjectNode
    bindings: Dict[str, str]
    captured: Tuple[CompInstr, ...]
    subtrees: Tuple[SubjectNode, ...]

    @property
    def def_name(self) -> str:
        return self.pattern.name

    def arg_names(self) -> Tuple[str, ...]:
        """Arguments of the emitted instruction, in definition order."""
        return tuple(
            self.bindings[port.name] for port in self.pattern.asm_def.inputs
        )

    def captured_attrs(self) -> Tuple[int, ...]:
        attrs: List[int] = []
        for instr in self.captured:
            attrs.extend(instr.attrs)
        return tuple(attrs)


def _res_allows(res: Res, prim: Prim) -> bool:
    return res is Res.ANY or res.value == prim.value


def match_at(
    pattern: Pattern,
    node: SubjectNode,
    types: Optional[Dict[str, object]] = None,
) -> Optional[Match]:
    """Try to match ``pattern`` rooted at ``node``.

    ``types`` maps subject variable names to their types so that
    pattern leaves (definition inputs) only bind type-correct
    operands; without it only internal node types are checked.
    """
    prim = pattern.asm_def.prim
    input_types = {port.name: port.ty for port in pattern.asm_def.inputs}
    bindings: Dict[str, str] = {}
    matched_by_dst: Dict[str, CompInstr] = {}
    subtrees: List[SubjectNode] = []

    def walk(pat: PatternNode, subj: SubjectNode) -> bool:
        instr = subj.instr
        if pat.instr.op is not instr.op:
            return False
        if pat.instr.ty != instr.ty:
            return False
        if not _res_allows(instr.res, prim):
            return False
        if len(pat.children) != len(subj.children):
            return False
        matched_by_dst[pat.instr.dst] = instr
        for pat_child, subj_child in zip(pat.children, subj.children):
            if isinstance(pat_child, PatternNode):
                if not isinstance(subj_child, SubjectNode):
                    return False
                if not walk(pat_child, subj_child):
                    return False
            else:
                # Pattern leaf: bind the definition input to the
                # subject variable (non-linear patterns must bind the
                # same variable each time).
                subj_name = (
                    subj_child.dst
                    if isinstance(subj_child, SubjectNode)
                    else subj_child
                )
                expected = input_types[pat_child]
                if isinstance(subj_child, SubjectNode):
                    if subj_child.instr.ty != expected:
                        return False
                elif types is not None and types.get(subj_name) != expected:
                    return False
                bound = bindings.get(pat_child)
                if bound is None:
                    bindings[pat_child] = subj_name
                    if isinstance(subj_child, SubjectNode):
                        subtrees.append(subj_child)
                elif bound != subj_name:
                    return False
        return True

    if not walk(pattern.root, node):
        return None

    captured = tuple(
        matched_by_dst[body.dst] for body in pattern.body_order_nodes()
    )
    return Match(
        pattern=pattern,
        node=node,
        bindings=bindings,
        captured=captured,
        subtrees=tuple(subtrees),
    )


@dataclass
class CoverResult:
    """The minimum-cost cover of one subject tree.

    ``matches`` lists the chosen matches in emission (dependency)
    order; ``cost`` is the total weighted area; ``match_costs`` holds
    each chosen match's *own* weighted area (subtree costs excluded),
    parallel to ``matches`` — the per-match figure the provenance
    lineage reports.  ``dp_hits`` and ``matches_tried`` expose the
    dynamic-programming effort behind the cover (memo-table hits and
    actual pattern match attempts); ``index_skips`` counts candidates
    the pattern index rejected by fingerprint *before* any match
    attempt.  ``replayed`` marks covers produced by
    :func:`replay_cover` from a digest-equal template rather than by
    the DP — they carry zero effort counters.

    ``digest`` is the tree's structural identity
    (:func:`repro.ir.dfg.tree_digest`), stamped by the memoizing
    selector on fresh covers and replays alike (``None`` on the
    non-memo path).  It is the sub-function recompilation unit: the
    isel memo replays covers per digest, and the placement-reuse tier
    (:mod:`repro.place.reuse`) extends the same idea below placement
    with alpha-canonical cluster signatures — edit one tree and every
    other tree's cover *and* placement replay from cache.
    """

    tree: SubjectTree
    matches: List[Match]
    cost: float
    dp_hits: int = 0
    matches_tried: int = 0
    match_costs: List[float] = field(default_factory=list)
    index_skips: int = 0
    replayed: bool = False
    digest: Optional[str] = None


def cover_tree(
    tree: SubjectTree,
    patterns_by_root: "PatternIndex | Dict[Tuple[object, object], List[Pattern]]",
    prim_weight: Dict[Prim, float],
    types: Optional[Dict[str, object]] = None,
    prefilter: bool = True,
) -> CoverResult:
    """Cover ``tree`` with minimum total weighted area.

    ``patterns_by_root`` is a :class:`~repro.tdl.pattern.PatternIndex`
    (fingerprint prefilter applied unless ``prefilter`` is off) or, for
    compatibility, a plain dict indexing patterns by root ``(op, ty)``;
    ``prim_weight`` scales each primitive's area into a common cost
    unit (see ``Selector.dsp_weight``).
    """
    best: Dict[int, Tuple[float, Match]] = {}
    dp_hits = 0
    matches_tried = 0
    index_skips = 0
    indexed = isinstance(patterns_by_root, PatternIndex)

    def cost_of(node: SubjectNode) -> float:
        nonlocal dp_hits, matches_tried, index_skips
        key = id(node)
        cached = best.get(key)
        if cached is not None:
            dp_hits += 1
            return cached[0]
        node_best: Optional[Tuple[float, Match]] = None
        if indexed:
            candidates, skipped = patterns_by_root.candidates(
                node, prefilter=prefilter
            )
            index_skips += skipped
        else:
            candidates = patterns_by_root.get(
                (node.instr.op, node.instr.ty), []
            )
        for pattern in candidates:
            matches_tried += 1
            match = match_at(pattern, node, types)
            if match is None:
                continue
            cost = pattern.asm_def.area * prim_weight[pattern.asm_def.prim]
            feasible = True
            for subtree in match.subtrees:
                sub_cost = cost_of(subtree)
                if sub_cost == float("inf"):
                    feasible = False
                    break
                cost += sub_cost
            if not feasible:
                continue
            if node_best is None or cost < node_best[0]:
                node_best = (cost, match)
        if node_best is None:
            best[key] = (float("inf"), None)  # type: ignore[assignment]
            return float("inf")
        best[key] = node_best
        return node_best[0]

    total = cost_of(tree.root)
    if total == float("inf"):
        instr = tree.root.instr
        raise SelectionError(
            f"no target instruction covers {instr.dst!r} "
            f"({instr.op_name} : {instr.ty} @{instr.res})"
        )

    # Recover the chosen matches, children before parents so emitted
    # instructions are in dependency order.
    ordered: List[Match] = []
    ordered_costs: List[float] = []

    def emit(node: SubjectNode) -> None:
        match = best[id(node)][1]
        assert match is not None
        for subtree in match.subtrees:
            emit(subtree)
        ordered.append(match)
        asm_def = match.pattern.asm_def
        ordered_costs.append(asm_def.area * prim_weight[asm_def.prim])

    emit(tree.root)
    return CoverResult(
        tree=tree,
        matches=ordered,
        cost=total,
        dp_hits=dp_hits,
        matches_tried=matches_tried,
        match_costs=ordered_costs,
        index_skips=index_skips,
    )


def _correspond(
    template: SubjectNode,
    node: SubjectNode,
    rename: Dict[str, str],
    nodes: Dict[str, SubjectNode],
) -> None:
    """Map every name of ``template`` to its counterpart in ``node``.

    The two trees must be structurally equal (same digest); the walk
    fills ``rename`` (template variable name -> instance name, for
    node dsts and leaves alike) and ``nodes`` (template node dst ->
    instance node).
    """
    rename[template.dst] = node.dst
    nodes[template.dst] = node
    for t_child, n_child in zip(template.children, node.children):
        if isinstance(t_child, SubjectNode):
            assert isinstance(n_child, SubjectNode), "digest collision"
            _correspond(t_child, n_child, rename, nodes)
        else:
            assert isinstance(n_child, str), "digest collision"
            rename[t_child] = n_child


def replay_cover(cover: CoverResult, tree: SubjectTree) -> CoverResult:
    """Rebind a memoized cover onto a digest-equal tree instance.

    ``cover`` was computed by :func:`cover_tree` on a template tree
    structurally equal to ``tree`` (same :func:`repro.ir.dfg.
    tree_digest`).  The replay walks both trees in parallel to build
    the name correspondence, then rebinds every chosen match — node,
    bindings, captured instructions, subtrees — onto the instance's
    concrete operands.  Because the matches, their order, and their
    costs are copied verbatim from the template's DP solution, the
    replay inherits its tie-breaking exactly: emitted assembly is
    byte-identical to covering the instance from scratch.
    """
    rename: Dict[str, str] = {}
    nodes: Dict[str, SubjectNode] = {}
    _correspond(cover.tree.root, tree.root, rename, nodes)
    matches = [
        Match(
            pattern=match.pattern,
            node=nodes[match.node.dst],
            bindings={
                name: rename[bound] for name, bound in match.bindings.items()
            },
            captured=tuple(
                nodes[instr.dst].instr for instr in match.captured
            ),
            subtrees=tuple(
                nodes[subtree.dst] for subtree in match.subtrees
            ),
        )
        for match in cover.matches
    ]
    return CoverResult(
        tree=tree,
        matches=matches,
        cost=cover.cost,
        match_costs=list(cover.match_costs),
        replayed=True,
        digest=cover.digest,
    )
