"""Pretty-printer for the assembly language."""

from __future__ import annotations

from repro.asm.ast import AsmFunc, AsmInstr, AsmOrWire
from repro.ir.printer import INDENT, print_instr


def print_asm_instr(instr: AsmOrWire) -> str:
    """Render one assembly or wire instruction."""
    if not isinstance(instr, AsmInstr):
        return print_instr(instr)
    parts = [f"{instr.dst}:{instr.ty} = {instr.op}"]
    if instr.attrs:
        parts.append("[" + ", ".join(str(attr) for attr in instr.attrs) + "]")
    if instr.args:
        parts.append("(" + ", ".join(instr.args) + ")")
    parts.append(f" @{instr.loc};")
    return "".join(parts)


def print_asm_func(func: AsmFunc) -> str:
    """Render a whole assembly function."""
    inputs = ", ".join(f"{port.name}: {port.ty}" for port in func.inputs)
    outputs = ", ".join(f"{port.name}: {port.ty}" for port in func.outputs)
    lines = [f"def {func.name}({inputs}) -> ({outputs}) {{"]
    for instr in func.instrs:
        lines.append(INDENT + print_asm_instr(instr))
    lines.append("}")
    return "\n".join(lines)
