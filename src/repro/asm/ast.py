"""Abstract syntax for the assembly language (paper Figure 5b).

Assembly functions share wire instructions with the intermediate
language; compute instructions are replaced by :class:`AsmInstr`,
whose operation is an *open* name resolved against a target
description, and which carries a :class:`~repro.asm.coords.Loc`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, Tuple, Union

from repro.asm.coords import Loc
from repro.errors import TypeCheckError
from repro.ir.ast import Port, WireInstr
from repro.ir.types import Ty


@dataclass(frozen=True)
class AsmInstr:
    """A target-specific instruction at a (possibly unresolved) location."""

    dst: str
    ty: Ty
    op: str
    attrs: Tuple[int, ...]
    args: Tuple[str, ...]
    loc: Loc

    @property
    def op_name(self) -> str:
        return self.op

    @property
    def is_stateful(self) -> bool:
        # Statefulness of an ASM instruction is a property of its target
        # definition; this syntactic predicate is refined by the target.
        return False

    def with_loc(self, loc: Loc) -> "AsmInstr":
        return replace(self, loc=loc)

    def with_op(self, op: str) -> "AsmInstr":
        return replace(self, op=op)


AsmOrWire = Union[AsmInstr, WireInstr]


@dataclass(frozen=True)
class AsmFunc:
    """An assembly function: ports plus wire/assembly instructions."""

    name: str
    inputs: Tuple[Port, ...]
    outputs: Tuple[Port, ...]
    instrs: Tuple[AsmOrWire, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.outputs:
            raise TypeCheckError(f"function {self.name!r} must have outputs")

    def input_names(self) -> Tuple[str, ...]:
        return tuple(port.name for port in self.inputs)

    def output_names(self) -> Tuple[str, ...]:
        return tuple(port.name for port in self.outputs)

    def defs(self) -> Dict[str, Ty]:
        table: Dict[str, Ty] = {port.name: port.ty for port in self.inputs}
        for instr in self.instrs:
            table[instr.dst] = instr.ty
        return table

    def asm_instrs(self) -> Iterator[AsmInstr]:
        for instr in self.instrs:
            if isinstance(instr, AsmInstr):
                yield instr

    def wire_instrs(self) -> Iterator[WireInstr]:
        for instr in self.instrs:
            if isinstance(instr, WireInstr):
                yield instr

    def with_instrs(self, instrs: Tuple[AsmOrWire, ...]) -> "AsmFunc":
        return replace(self, instrs=instrs)

    @property
    def is_placed(self) -> bool:
        """True when every assembly instruction has a resolved location."""
        return all(instr.loc.is_resolved for instr in self.asm_instrs())
