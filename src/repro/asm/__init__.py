"""The Reticle assembly language (paper Figure 5b).

Family-specific instructions with *location* semantics: each assembly
instruction carries ``@prim(x, y)`` where ``prim`` is ``lut`` or
``dsp`` and the coordinates are integers, wildcards (``??``), or
symbolic expressions such as ``y+1`` that encode relative-placement
constraints between instructions (Section 5.2).
"""

from repro.asm.coords import (
    Coord,
    CoordLit,
    CoordVar,
    CoordWildcard,
    WILDCARD,
    Loc,
    Prim,
)
from repro.asm.ast import AsmInstr, AsmFunc
from repro.asm.parser import parse_asm_func, parse_asm_instr
from repro.asm.printer import print_asm_func, print_asm_instr
from repro.asm.interp import AsmInterpreter, asm_to_ir

__all__ = [
    "Coord",
    "CoordLit",
    "CoordVar",
    "CoordWildcard",
    "WILDCARD",
    "Loc",
    "Prim",
    "AsmInstr",
    "AsmFunc",
    "parse_asm_func",
    "parse_asm_instr",
    "print_asm_func",
    "print_asm_instr",
    "AsmInterpreter",
    "asm_to_ir",
]
