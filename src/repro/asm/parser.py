"""Parser for the textual assembly language.

The grammar extends the IR's instruction form with locations:

.. code-block:: text

    asm    ::= IDENT ':' type '=' IDENT attrs? args? '@' loc ';'
    loc    ::= ('lut' | 'dsp') '(' coord ',' coord ')'
    coord  ::= '??' | INT | IDENT ('+' INT)?

Wire instructions are shared with the IR parser.  An instruction name
that is not a wire operation is an assembly operation; its validity is
checked later against a target description, not at parse time.
"""

from __future__ import annotations

from typing import List

from repro.asm.ast import AsmFunc, AsmInstr, AsmOrWire
from repro.asm.coords import (
    Coord,
    CoordLit,
    CoordVar,
    Loc,
    Prim,
    WILDCARD,
)
from repro.errors import ParseError
from repro.ir.ast import Port, WireInstr
from repro.ir.ops import lookup_wire_op
from repro.ir.parser import (
    parse_args_at,
    parse_attrs_at,
    parse_port_at,
    parse_type_at,
)
from repro.lang.cursor import TokenCursor
from repro.lang.lexer import TokenKind, tokenize


def parse_coord_at(cursor: TokenCursor) -> Coord:
    if cursor.accept(TokenKind.WILDCARD):
        return WILDCARD
    if cursor.at(TokenKind.INT):
        return CoordLit(cursor.expect_int())
    name_token = cursor.expect(TokenKind.IDENT)
    offset = 0
    if cursor.accept(TokenKind.PLUS):
        offset = cursor.expect_int()
    return CoordVar(name_token.text, offset)


def parse_loc_at(cursor: TokenCursor) -> Loc:
    prim_token = cursor.expect(TokenKind.IDENT)
    try:
        prim = Prim(prim_token.text)
    except ValueError:
        raise ParseError(
            f"unknown primitive: {prim_token.text!r}",
            prim_token.line,
            prim_token.col,
        ) from None
    cursor.expect(TokenKind.LPAREN)
    x = parse_coord_at(cursor)
    cursor.expect(TokenKind.COMMA)
    y = parse_coord_at(cursor)
    cursor.expect(TokenKind.RPAREN)
    return Loc(prim, x, y)


def parse_asm_instr_at(cursor: TokenCursor) -> AsmOrWire:
    dst = cursor.expect(TokenKind.IDENT)
    cursor.expect(TokenKind.COLON)
    ty = parse_type_at(cursor)
    cursor.expect(TokenKind.EQUALS)
    op_token = cursor.expect(TokenKind.IDENT)
    attrs = parse_attrs_at(cursor)
    args = parse_args_at(cursor)

    wire_op = lookup_wire_op(op_token.text)
    if wire_op is not None:
        if cursor.at(TokenKind.AT):
            raise ParseError(
                f"wire instruction {op_token.text!r} cannot take a location",
                op_token.line,
                op_token.col,
            )
        cursor.expect(TokenKind.SEMI)
        return WireInstr(dst=dst.text, ty=ty, attrs=attrs, args=args, op=wire_op)

    cursor.expect(TokenKind.AT)
    loc = parse_loc_at(cursor)
    cursor.expect(TokenKind.SEMI)
    return AsmInstr(
        dst=dst.text, ty=ty, op=op_token.text, attrs=attrs, args=args, loc=loc
    )


def parse_asm_func_at(cursor: TokenCursor) -> AsmFunc:
    cursor.expect_ident("def")
    name = cursor.expect(TokenKind.IDENT).text

    cursor.expect(TokenKind.LPAREN)
    inputs: List[Port] = []
    if not cursor.at(TokenKind.RPAREN):
        inputs.append(parse_port_at(cursor))
        while cursor.accept(TokenKind.COMMA):
            inputs.append(parse_port_at(cursor))
    cursor.expect(TokenKind.RPAREN)

    cursor.expect(TokenKind.ARROW)
    cursor.expect(TokenKind.LPAREN)
    outputs: List[Port] = [parse_port_at(cursor)]
    while cursor.accept(TokenKind.COMMA):
        outputs.append(parse_port_at(cursor))
    cursor.expect(TokenKind.RPAREN)

    cursor.expect(TokenKind.LBRACE)
    instrs: List[AsmOrWire] = []
    while not cursor.at(TokenKind.RBRACE):
        instrs.append(parse_asm_instr_at(cursor))
    cursor.expect(TokenKind.RBRACE)

    return AsmFunc(
        name=name,
        inputs=tuple(inputs),
        outputs=tuple(outputs),
        instrs=tuple(instrs),
    )


def parse_asm_instr(source: str) -> AsmOrWire:
    """Parse a single assembly (or wire) instruction from text."""
    cursor = TokenCursor(tokenize(source))
    instr = parse_asm_instr_at(cursor)
    if not cursor.at_end():
        raise cursor.error("trailing input after instruction")
    return instr


def parse_asm_func(source: str) -> AsmFunc:
    """Parse a single assembly function from text."""
    cursor = TokenCursor(tokenize(source))
    func = parse_asm_func_at(cursor)
    if not cursor.at_end():
        raise cursor.error("trailing input after function")
    return func
