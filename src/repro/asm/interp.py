"""Semantics of assembly programs: expansion back into the IR.

Each assembly operation is defined by a target description as a
sequence of intermediate-language operations, "automatically composed
in the compilation process" (Section 4.2).  Expanding every assembly
instruction through its definition therefore yields an IR function
with identical behaviour, which the reference interpreter can run —
this is both how assembly programs get their meaning and how the
compiler's output is differentially tested against its input.

Attribute convention: an :class:`AsmInstr`'s attrs parameterize its
body's instructions in body order (e.g. the ``reg`` definition's
initial value).  An empty attr tuple means "use the definition's
literal attributes".
"""

from __future__ import annotations

from typing import Dict, List

from repro.asm.ast import AsmFunc, AsmInstr
from repro.errors import TargetError
from repro.ir.ast import CompInstr, Func, Instr, Res
from repro.ir.interp import Interpreter
from repro.ir.trace import Trace
from repro.tdl.ast import AsmDef, Target
from repro.utils.names import NameGenerator


def _res_of(asm_def: AsmDef) -> Res:
    return Res(asm_def.prim.value)


def expand_asm_instr(
    instr: AsmInstr, asm_def: AsmDef, names: NameGenerator
) -> List[Instr]:
    """Inline one assembly instruction through its definition."""
    if len(instr.args) != len(asm_def.inputs):
        raise TargetError(
            f"{instr.op!r} takes {len(asm_def.inputs)} arguments, "
            f"found {len(instr.args)}"
        )

    total_attrs = sum(body.op.num_attrs for body in asm_def.body
                      if isinstance(body, CompInstr))
    if instr.attrs and len(instr.attrs) != total_attrs:
        raise TargetError(
            f"{instr.op!r} takes 0 or {total_attrs} attributes, "
            f"found {len(instr.attrs)}"
        )

    rename: Dict[str, str] = {}
    for port, arg in zip(asm_def.inputs, instr.args):
        rename[port.name] = arg
    for body in asm_def.body:
        if body.dst == asm_def.output.name:
            rename[body.dst] = instr.dst
        else:
            rename[body.dst] = names.fresh(f"{instr.dst}_{body.dst}")

    expanded: List[Instr] = []
    attr_stream = list(instr.attrs)
    for body in asm_def.body:
        assert isinstance(body, CompInstr)
        needed = body.op.num_attrs
        if attr_stream and needed:
            attrs = tuple(attr_stream[:needed])
            attr_stream = attr_stream[needed:]
        else:
            attrs = body.attrs
        expanded.append(
            CompInstr(
                dst=rename[body.dst],
                ty=body.ty,
                attrs=attrs,
                args=tuple(rename[arg] for arg in body.args),
                op=body.op,
                res=_res_of(asm_def),
            )
        )
    return expanded


def asm_to_ir(func: AsmFunc, target: Target) -> Func:
    """Expand a whole assembly function into an equivalent IR function."""
    names = NameGenerator(func.defs())
    instrs: List[Instr] = []
    for instr in func.instrs:
        if isinstance(instr, AsmInstr):
            asm_def = target.get(instr.op)
            if asm_def is None:
                raise TargetError(
                    f"target {target.name!r} has no definition for "
                    f"{instr.op!r}"
                )
            instrs.extend(expand_asm_instr(instr, asm_def, names))
        else:
            instrs.append(instr)
    return Func(
        name=func.name,
        inputs=func.inputs,
        outputs=func.outputs,
        instrs=tuple(instrs),
    )


class AsmInterpreter:
    """Interpret assembly programs by expansion through a target."""

    def __init__(self, func: AsmFunc, target: Target) -> None:
        self.func = func
        self.target = target
        self.ir_func = asm_to_ir(func, target)
        self._interp = Interpreter(self.ir_func)

    def run(self, trace: Trace) -> Trace:
        return self._interp.run(trace)
