"""Coordinate expressions and locations (``loc`` in paper Figure 5b).

A location names a primitive kind and an ``(x, y)`` position on the
device: ``x`` is a column index, ``y`` a row within the column (see
DESIGN.md for the convention).  Coordinates come in three forms:

* a literal integer — a fixed position;
* the wildcard ``??`` — the placer chooses freely;
* a symbolic expression ``v`` or ``v + i`` — positions that share the
  variable ``v`` are constrained relative to one another, which is how
  cascade adjacency (same column, next row) is expressed (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import LayoutError
from repro.prims import Prim

__all__ = [
    "Prim",
    "Coord",
    "CoordWildcard",
    "CoordLit",
    "CoordVar",
    "WILDCARD",
    "Loc",
]


class Coord:
    """Base class of coordinate expressions."""

    def offset_by(self, delta: int) -> "Coord":
        raise NotImplementedError

    def canonical(self) -> Tuple[Optional[str], Optional[int]]:
        """Normalize to ``(var, offset)``.

        Returns ``(None, None)`` for a wildcard, ``(None, i)`` for a
        literal, and ``(v, i)`` for ``v + i``.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class CoordWildcard(Coord):
    """``??`` — the placer picks the position."""

    def offset_by(self, delta: int) -> Coord:
        raise LayoutError("cannot offset a wildcard coordinate")

    def canonical(self) -> Tuple[Optional[str], Optional[int]]:
        return (None, None)

    def __str__(self) -> str:
        return "??"


@dataclass(frozen=True)
class CoordLit(Coord):
    """A fixed integer position."""

    value: int

    def offset_by(self, delta: int) -> Coord:
        return CoordLit(self.value + delta)

    def canonical(self) -> Tuple[Optional[str], Optional[int]]:
        return (None, self.value)

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class CoordVar(Coord):
    """A symbolic position ``var + offset`` (offset may be zero)."""

    var: str
    offset: int = 0

    def offset_by(self, delta: int) -> Coord:
        return CoordVar(self.var, self.offset + delta)

    def canonical(self) -> Tuple[Optional[str], Optional[int]]:
        return (self.var, self.offset)

    def __str__(self) -> str:
        if self.offset == 0:
            return self.var
        # A negative offset prints as e.g. ``v+-1``, which round-trips.
        return f"{self.var}+{self.offset}"


WILDCARD = CoordWildcard()


@dataclass(frozen=True)
class Loc:
    """A primitive kind plus an ``(x, y)`` coordinate pair."""

    prim: Prim
    x: Coord = WILDCARD
    y: Coord = WILDCARD

    @property
    def is_resolved(self) -> bool:
        """True when both coordinates are concrete integers."""
        return isinstance(self.x, CoordLit) and isinstance(self.y, CoordLit)

    def position(self) -> Tuple[int, int]:
        """The concrete ``(x, y)``; raises if unresolved."""
        if not self.is_resolved:
            raise LayoutError(f"location {self} is not resolved")
        assert isinstance(self.x, CoordLit) and isinstance(self.y, CoordLit)
        return (self.x.value, self.y.value)

    def __str__(self) -> str:
        return f"{self.prim.value}({self.x}, {self.y})"
