"""The ``reticle`` command-line interface.

Subcommands mirror the toolchain stages::

    reticle check    prog.ret          # typecheck + well-formedness
    reticle interp   prog.ret --trace trace.json
    reticle select   prog.ret          # IR -> assembly (unplaced)
    reticle place    prog.ret          # IR -> placed assembly
    reticle compile  prog.ret -o out.v # IR -> structural Verilog
    reticle compile  prog.ret -o out.v --profile --trace-out trace.json
    reticle compile  prog.ret --passes full --cache-dir .ret-cache --jobs 4
    reticle compile  prog.ret --isel-jobs 4 --isel-memo on
    reticle behav    prog.ret          # IR -> behavioral Verilog
    reticle tdl                        # dump the UltraScale target
    reticle passes                     # list pipeline passes/presets
    reticle report   prog.ret          # compile report with provenance
    reticle serve    --port 8752 --cache-dir .ret-cache --cache-budget 256M
    reticle serve    --port 8752 --log-json serve.jsonl --window 512
    reticle top      127.0.0.1:8752    # live daemon dashboard
    reticle flightrecorder 127.0.0.1:8752 --json > flight.json
    reticle bench fig13 tensoradd      # regenerate a figure's rows
    reticle bench service --json BENCH_service.json
    reticle bench diff OLD.json NEW.json --max-regress 25

Programs are read in the textual IR format (see README); traces are
JSON objects mapping input names to per-cycle value lists.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.asm.printer import print_asm_func
from repro.compiler import ReticleCompiler
from repro.errors import ReticleError
from repro.frontend.behavioral import emit_behavioral_verilog
from repro.harness.experiments import (
    fig4_rows,
    fig13_rows,
    format_table,
    pipeline_rows,
    pipeline_table_rows,
    write_bench_pipeline,
)
from repro.ir.interp import Interpreter
from repro.ir.parser import parse_prog
from repro.ir.trace import Trace
from repro.ir.typecheck import typecheck_func
from repro.ir.wellformed import check_well_formed
from repro.isel.select import select
from repro.obs import Tracer, format_profile, write_chrome_trace
from repro.layout.cascade import apply_cascading
from repro.passes import PASS_REGISTRY, PIPELINE_PRESETS
from repro.tdl.ultrascale import ultrascale_tdl_text


def _read_prog(path: str):
    with open(path) as handle:
        return parse_prog(handle.read())


def _read_func(path: str, name: Optional[str] = None):
    """Read one function: by --func name, or the file's only one."""
    prog = _read_prog(path)
    if name is not None:
        func = prog.get(name)
        if func is None:
            raise ReticleError(f"no function named {name!r} in {path}")
        return func
    if len(prog) != 1:
        names = ", ".join(func.name for func in prog)
        raise ReticleError(
            f"{path} defines several functions ({names}); pass --func"
        )
    return prog.funcs[0]


def _resolve_target(name: str):
    from repro.compiler import resolve_target

    return resolve_target(name)


def _target_choices(allow_all: bool = False) -> List[str]:
    from repro.compiler import registered_targets

    choices = list(registered_targets())
    if allow_all:
        choices.append("all")
    return choices


def _multi_output_path(path: str, target: str) -> str:
    """Per-target output file of a fan-out: out.v -> out.ice40.v."""
    stem, dot, ext = path.rpartition(".")
    if not dot:
        return f"{path}.{target}"
    return f"{stem}.{target}.{ext}"


def _write_output(text: str, path: Optional[str]) -> None:
    if path is None:
        print(text)
    else:
        with open(path, "w") as handle:
            handle.write(text + "\n")


def _cmd_check(args: argparse.Namespace) -> int:
    prog = _read_prog(args.program)
    for func in prog:
        typecheck_func(func)
        info = check_well_formed(func)
        print(
            f"{func.name}: ok ({len(info.pure_order)} pure instructions, "
            f"{len(info.regs)} registers)"
        )
    return 0


def _cmd_interp(args: argparse.Namespace) -> int:
    func = _read_func(args.program, getattr(args, 'func', None))
    with open(args.trace) as handle:
        raw = json.load(handle)
    trace = Trace(
        {
            name: [tuple(v) if isinstance(v, list) else v for v in steps]
            for name, steps in raw.items()
        }
    )
    result = Interpreter(func).run(trace)
    if args.vcd:
        from repro.ir.vcd import dump_vcd, merge_traces

        types = {p.name: p.ty for p in func.inputs + func.outputs}
        dump_vcd(args.vcd, merge_traces(trace, result), types, module=func.name)
    print(json.dumps(result.to_dict(), indent=2))
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    func = _read_func(args.program, getattr(args, 'func', None))
    target, _ = _resolve_target(args.target)
    tracer = Tracer()
    with tracer.span("select"):
        asm = select(
            func,
            target,
            tracer=tracer,
            memo=args.isel_memo == "on",
            jobs=args.isel_jobs,
        )
    if args.cascade:
        with tracer.span("cascade"):
            asm = apply_cascading(asm, target, tracer=tracer)
    _write_output(print_asm_func(asm), args.output)
    _emit_telemetry(tracer, args)
    return 0


def _emit_telemetry(tracer: Tracer, args: argparse.Namespace) -> None:
    """Honour the uniform --profile/--trace-out telemetry flags."""
    if args.profile:
        print(format_profile(tracer), file=sys.stderr)
    if args.trace_out:
        write_chrome_trace(tracer, args.trace_out)


def _cmd_place(args: argparse.Namespace) -> int:
    func = _read_func(args.program, getattr(args, 'func', None))
    target, device = _resolve_target(args.target)
    compiler = ReticleCompiler(
        target=target,
        device=device,
        shrink=not args.no_shrink,
        place_jobs=args.place_jobs,
        place_portfolio=args.place_portfolio,
        place_shards=args.place_shards,
        place_reuse=args.place_reuse,
        isel_jobs=args.isel_jobs,
        isel_memo=args.isel_memo == "on",
    )
    tracer = Tracer()
    result = compiler.compile(func, tracer=tracer)
    _write_output(print_asm_func(result.placed), args.output)
    _emit_telemetry(tracer, args)
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    prog = _read_prog(args.program)
    options = dict(
        shrink=not args.no_shrink,
        optimize=args.opt,
        auto_vectorize=args.vectorize,
        passes=args.passes,
        cache_dir=args.cache_dir,
        place_jobs=args.place_jobs,
        place_portfolio=args.place_portfolio,
        place_shards=args.place_shards,
        place_reuse=args.place_reuse,
        isel_jobs=args.isel_jobs,
        isel_memo=args.isel_memo == "on",
        executor=getattr(args, "executor", "thread"),
    )
    if args.pipeline:
        from repro.ir.ast import Prog
        from repro.ir.pipeline import pipeline_func

        prog = Prog(
            tuple(
                pipeline_func(func, stages=args.pipeline).func
                for func in prog
            )
        )
    # One tracer across every function, so --profile aggregates the
    # whole program and --trace-out gets a single coherent timeline.
    tracer = Tracer()
    if args.target == "all":
        from repro.compiler import compile_prog_multi

        multi = compile_prog_multi(
            prog, ["all"], tracer=tracer, jobs=args.jobs, **options
        )
        for target_name, results in multi.items():
            verilog = "\n\n".join(
                result.verilog() for result in results.values()
            )
            if args.output is None:
                print(f"// ---- target: {target_name} ----")
                print(verilog)
            else:
                _write_output(
                    verilog, _multi_output_path(args.output, target_name)
                )
            if args.xdc:
                from repro.codegen.xdc import generate_xdc

                with open(
                    _multi_output_path(args.xdc, target_name), "w"
                ) as handle:
                    for result in results.values():
                        handle.write(generate_xdc(result.netlist))
            for name, result in results.items():
                cached = " (cached)" if result.cached else ""
                print(
                    f"// compiled {name} for {target_name} in "
                    f"{result.seconds:.3f}s{cached}",
                    file=sys.stderr,
                )
        _emit_telemetry(tracer, args)
        return 0
    target, device = _resolve_target(args.target)
    compiler = ReticleCompiler(target=target, device=device, **options)
    results = compiler.compile_prog(prog, tracer=tracer, jobs=args.jobs)
    _write_output(
        "\n\n".join(result.verilog() for result in results.values()),
        args.output,
    )
    _emit_telemetry(tracer, args)
    if args.xdc:
        from repro.codegen.xdc import generate_xdc

        with open(args.xdc, "w") as handle:
            for result in results.values():
                handle.write(generate_xdc(result.netlist))
    for name, result in results.items():
        cached = " (cached)" if result.cached else ""
        print(
            f"// compiled {name} in {result.seconds:.3f}s{cached}",
            file=sys.stderr,
        )
    return 0


def _cmd_report_cross(args: argparse.Namespace) -> int:
    from repro.compiler import compile_prog_multi
    from repro.obs.report import (
        build_cross_target_report,
        format_cross_target_report,
    )

    prog = _read_prog(args.program)
    tracer = Tracer()
    # --cross-target means the full comparison: every registered
    # target unless the user narrowed the fan-out with --target all
    # being the other way into this path.
    names = ["all"] if args.cross_target else [args.target]
    results = compile_prog_multi(
        prog,
        names,
        tracer=tracer,
        jobs=args.place_jobs,
        place_portfolio=args.place_portfolio,
        place_shards=args.place_shards,
        place_reuse=args.place_reuse,
        isel_jobs=args.isel_jobs,
        isel_memo=args.isel_memo == "on",
    )
    report = build_cross_target_report(results)
    if args.json:
        _write_output(report.to_json(), args.output)
    else:
        _write_output(format_cross_target_report(report), args.output)
    _emit_telemetry(tracer, args)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import Severity

    # --cross-target (or --target all) compares the whole program
    # across fabrics instead of explaining one compile in depth.
    if args.cross_target or args.target == "all":
        return _cmd_report_cross(args)
    func = _read_func(args.program, getattr(args, 'func', None))
    target, device = _resolve_target(args.target)
    compiler = ReticleCompiler(
        target=target,
        device=device,
        place_jobs=args.place_jobs,
        place_portfolio=args.place_portfolio,
        place_shards=args.place_shards,
        place_reuse=args.place_reuse,
        isel_jobs=args.isel_jobs,
        isel_memo=args.isel_memo == "on",
    )
    tracer = Tracer()
    result = compiler.compile(func, tracer=tracer)
    report = result.report()
    if args.json:
        _write_output(report.to_json(), args.output)
    else:
        min_severity = Severity[args.events.upper()]
        _write_output(report.format_text(min_severity), args.output)
    _emit_telemetry(tracer, args)
    return 0


def _cmd_passes(args: argparse.Namespace) -> int:
    from repro.place.solver import PORTFOLIO_PRESETS, STRATEGY_REGISTRY

    print("passes:")
    for name in PASS_REGISTRY:
        print(f"  {name}")
    print("presets:")
    for name, names in PIPELINE_PRESETS.items():
        print(f"  {name}: {','.join(names)}")
    print("placement strategies (--place-portfolio):")
    for name in STRATEGY_REGISTRY:
        print(f"  {name}")
    print("portfolio presets:")
    for name, names in PORTFOLIO_PRESETS.items():
        print(f"  {name}: {','.join(names)}")
    return 0


def _cmd_behav(args: argparse.Namespace) -> int:
    func = _read_func(args.program, getattr(args, 'func', None))
    _write_output(
        emit_behavioral_verilog(func, use_dsp_attr=args.use_dsp), args.output
    )
    return 0


def _cmd_tdl(args: argparse.Namespace) -> int:
    if args.target == "ultrascale":
        text = ultrascale_tdl_text()
    elif args.target == "ecp5":
        from repro.tdl.ecp5 import ecp5_tdl_text

        text = ecp5_tdl_text()
    else:
        from repro.tdl.ice40 import ice40_tdl_text

        text = ice40_tdl_text()
    _write_output(text.rstrip(), args.output)
    return 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    from repro.conformance import run_conformance

    targets = None if args.target == "all" else [args.target]
    report = run_conformance(targets=targets, jobs=args.jobs)
    if args.json:
        cells = [
            {
                "target": cell.target,
                "idiom": cell.idiom,
                "outcome": cell.outcome,
                "detail": cell.detail,
            }
            for cell in report.cells
        ]
        print(json.dumps({"cells": cells, "passed": report.passed}, indent=2))
    else:
        if args.matrix:
            print(report.format_matrix())
            print()
        print(report.summary())
        for cell in report.failing:
            print(
                f"FAIL {cell.target} {cell.idiom}: "
                f"{cell.outcome} ({cell.detail})"
            )
    return 0 if report.passed else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz.runner import run_fuzz

    report = run_fuzz(
        iterations=args.iterations,
        seed=args.seed,
        max_instrs=args.max_instrs,
        cells=args.cells,
        target=args.target,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import serve_main

    return serve_main(args)


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.serve.top import top_main

    return top_main(args)


def _cmd_flightrecorder(args: argparse.Namespace) -> int:
    from repro.serve.top import flightrecorder_main

    return flightrecorder_main(args)


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.figure == "diff":
        from repro.harness.benchdiff import diff_files, format_diff

        if not args.benchmark or not args.against:
            raise ReticleError(
                "bench diff needs two files: "
                "reticle bench diff OLD.json NEW.json"
            )
        diff = diff_files(
            args.benchmark,
            args.against,
            max_regress=args.max_regress,
            counter_regress=args.counter_regress,
        )
        print(format_diff(diff, verbose=args.verbose))
        return 0 if diff.ok else 1
    if args.figure == "pipeline":
        rows = pipeline_rows()
        if args.json:
            write_bench_pipeline(args.json, rows)
        print(format_table(pipeline_table_rows(rows)))
        return 0
    if args.figure == "service":
        from repro.harness.loadgen import (
            scaling_rows,
            scaling_table_rows,
            service_rows,
            service_table_rows,
            write_bench_service,
        )

        rows = service_rows(
            concurrency=args.concurrency, repeats=args.repeats
        )
        if not getattr(args, "no_scaling", False):
            rows = rows + scaling_rows()
        if args.json:
            write_bench_service(args.json, rows)
        print(format_table(service_table_rows(rows)))
        scaling = scaling_table_rows(rows)
        if scaling:
            print()
            print(format_table(scaling))
        return 0
    if args.figure == "fig4":
        rows = fig4_rows()
    else:
        if not args.benchmark:
            raise ReticleError("fig13 needs a benchmark name")
        rows = fig13_rows(args.benchmark)
    print(format_table(rows))
    return 0


def _add_isel_args(command: argparse.ArgumentParser) -> None:
    """The uniform --isel-jobs/--isel-memo selection flags."""
    command.add_argument(
        "--isel-jobs",
        type=int,
        default=1,
        metavar="N",
        help="instruction-selection thread-pool width: distinct tree "
        "shapes are covered on N workers (deterministic result order)",
    )
    command.add_argument(
        "--isel-memo",
        choices=["on", "off"],
        default="on",
        help="cross-tree cover memo: cover each distinct tree shape "
        "once and replay it per instance (default on; output is "
        "byte-identical either way)",
    )


def _add_place_args(command: argparse.ArgumentParser) -> None:
    """The uniform --place-jobs/--place-portfolio placement flags."""
    command.add_argument(
        "--place-jobs",
        type=int,
        default=1,
        metavar="N",
        help="placement thread-pool width: shrink probes dispatch in "
        "batches of N, and portfolio strategies race on the pool",
    )
    command.add_argument(
        "--place-portfolio",
        metavar="SPEC",
        help="race placement strategies: a preset name or a comma "
        "list of strategy names (see 'reticle passes'); the winner "
        "is priority-ordered, so output is deterministic",
    )
    command.add_argument(
        "--place-shards",
        type=int,
        default=0,
        metavar="N",
        help="region-sharded placement: split each resource kind's "
        "columns into N groups solved independently (in parallel on "
        "the --place-jobs pool) and stitched with a conflict-repair "
        "pass; only engages at device scale (>=512 items)",
    )
    command.add_argument(
        "--place-reuse",
        action="store_true",
        help="incremental placement: replay cached per-cluster "
        "placements from the previous compile of the same function, "
        "re-solving only edited clusters (placement becomes "
        "history-dependent; keyed into the compile cache)",
    )


def _add_telemetry_args(command: argparse.ArgumentParser) -> None:
    """The uniform --profile/--trace-out flags (see _emit_telemetry)."""
    command.add_argument(
        "--profile",
        action="store_true",
        help="print per-stage timings and counters to stderr",
    )
    command.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write a Chrome trace_event JSON trace here",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reticle",
        description="Reticle FPGA compiler (PLDI 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name: str, handler, help_text: str) -> argparse.ArgumentParser:
        command = sub.add_parser(name, help=help_text)
        command.set_defaults(handler=handler)
        return command

    check = add("check", _cmd_check, "typecheck and well-formedness check")
    check.add_argument("program")

    interp = add("interp", _cmd_interp, "interpret a program over a trace")
    interp.add_argument("program")
    interp.add_argument("--trace", required=True, help="JSON input trace")
    interp.add_argument("--vcd", help="also dump a VCD waveform here")
    interp.add_argument("--func", help="function name in multi-def files")

    selectc = add("select", _cmd_select, "lower IR to assembly")
    selectc.add_argument("program")
    selectc.add_argument("-o", "--output")
    selectc.add_argument(
        "--target", choices=_target_choices(), default="ultrascale"
    )
    selectc.add_argument(
        "--cascade", action="store_true", help="apply cascade optimization"
    )
    selectc.add_argument("--func", help="function name in multi-def files")
    _add_isel_args(selectc)
    _add_telemetry_args(selectc)

    placec = add("place", _cmd_place, "lower, cascade, and place")
    placec.add_argument("program")
    placec.add_argument("-o", "--output")
    placec.add_argument("--no-shrink", action="store_true")
    placec.add_argument(
        "--target", choices=_target_choices(), default="ultrascale"
    )
    placec.add_argument("--func", help="function name in multi-def files")
    _add_isel_args(placec)
    _add_place_args(placec)
    _add_telemetry_args(placec)

    compilec = add("compile", _cmd_compile, "full pipeline to Verilog")
    compilec.add_argument("program")
    compilec.add_argument("-o", "--output")
    compilec.add_argument("--no-shrink", action="store_true")
    compilec.add_argument(
        "--target",
        choices=_target_choices(allow_all=True),
        default="ultrascale",
        help="target family, or 'all' to fan the program out to every "
        "registered target in parallel on the --jobs pool (per-target "
        "output files get a .TARGET suffix)",
    )
    compilec.add_argument("--xdc", help="also write XDC constraints here")
    compilec.add_argument(
        "--opt",
        action="store_true",
        help="run copy-prop/const-fold/DCE before selection",
    )
    compilec.add_argument(
        "--vectorize",
        action="store_true",
        help="auto-combine independent scalar ops into vectors (§8.2)",
    )
    compilec.add_argument(
        "--pipeline",
        type=int,
        default=0,
        metavar="STAGES",
        help="auto-pipeline combinational programs into STAGES cuts (§8.1)",
    )
    compilec.add_argument(
        "--passes",
        metavar="SPEC",
        help="pipeline preset or comma-separated pass list (see "
        "'reticle passes'); overrides --opt/--vectorize",
    )
    compilec.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="content-addressed compile cache directory (hits/misses "
        "show up as cache.* counters under --profile)",
    )
    compilec.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="compile a multi-function program on N workers (0 = auto: "
        "RETICLE_JOBS env override, else the CPU count)",
    )
    compilec.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="execution tier for the --jobs fan-out: 'thread' (default, "
        "shares one compiler in-process) or 'process' (persistent "
        "worker processes that sidestep the GIL for CPU-bound "
        "multi-function compiles)",
    )
    _add_isel_args(compilec)
    _add_place_args(compilec)
    _add_telemetry_args(compilec)

    reportc = add(
        "report", _cmd_report, "compile and render a provenance report"
    )
    reportc.add_argument("program")
    reportc.add_argument("-o", "--output")
    reportc.add_argument(
        "--target",
        choices=_target_choices(allow_all=True),
        default="ultrascale",
    )
    reportc.add_argument("--func", help="function name in multi-def files")
    reportc.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable JSON report instead of text",
    )
    reportc.add_argument(
        "--cross-target",
        action="store_true",
        help="compile the program to every registered target and "
        "render one table comparing area, critical path, and compile "
        "time across fabrics",
    )
    _add_isel_args(reportc)
    _add_place_args(reportc)
    reportc.add_argument(
        "--events",
        choices=["debug", "info", "warning", "error"],
        default="info",
        help="minimum severity listed in the events section",
    )
    _add_telemetry_args(reportc)

    behav = add("behav", _cmd_behav, "emit behavioral Verilog (baseline)")
    behav.add_argument("program")
    behav.add_argument("-o", "--output")
    behav.add_argument("--use-dsp", action="store_true")
    behav.add_argument("--func", help="function name in multi-def files")

    tdl = add("tdl", _cmd_tdl, "dump a target description")
    tdl.add_argument("-o", "--output")
    tdl.add_argument(
        "--target", choices=_target_choices(), default="ultrascale"
    )

    add("passes", _cmd_passes, "list pipeline passes and presets")

    conformance = add(
        "conformance",
        _cmd_conformance,
        "run the idiom x target conformance matrix",
    )
    conformance.add_argument(
        "--target",
        choices=_target_choices(allow_all=True),
        default="all",
        help="one target, or 'all' (default) for the full matrix",
    )
    conformance.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run matrix cells on N worker threads",
    )
    conformance.add_argument(
        "--matrix",
        action="store_true",
        help="print the full idiom x target grid, not only the summary",
    )
    conformance.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable cells instead of text",
    )

    fuzz = add("fuzz", _cmd_fuzz, "differentially fuzz every flow")
    fuzz.add_argument("--iterations", type=int, default=25)
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--max-instrs", type=int, default=12)
    fuzz.add_argument(
        "--target",
        choices=_target_choices(allow_all=True),
        default="ultrascale",
        help="target family to fuzz; 'all' compiles each random "
        "program to every registered target and differentially checks "
        "them against the IR interpreter and each other",
    )
    fuzz.add_argument(
        "--cells",
        type=int,
        default=0,
        metavar="N",
        help="device-filling mode: fuzz programs targeting ~N netlist "
        "cells (independent single-node trees mixing LUT, DSP, and "
        "BRAM ops) instead of small random programs; pair large N "
        "with --iterations 1",
    )

    serve = add(
        "serve", _cmd_serve, "run the long-lived compile daemon"
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1; daemon is a local "
        "service, not an internet-facing one)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8752,
        help="TCP port (0 = pick an ephemeral port and print it)",
    )
    serve.add_argument(
        "--unix",
        metavar="PATH",
        help="serve on a unix-domain socket instead of TCP",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="compile workers (default 4)",
    )
    serve.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="execution tier for the workers: 'thread' (default) or "
        "'process' (persistent worker processes — true multi-core "
        "compile throughput; see DESIGN.md §17)",
    )
    serve.add_argument(
        "--max-tasks-per-worker",
        type=int,
        default=0,
        metavar="N",
        help="with --executor process: recycle each worker process "
        "after N tasks (0 = never; bounds slow per-process growth)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        metavar="N",
        help="admission window: max outstanding compile items before "
        "batches are rejected with 503 (default 64)",
    )
    serve.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="shared content-addressed cache directory (the "
        "cross-process tier; stale *.tmp litter is swept at startup)",
    )
    serve.add_argument(
        "--cache-budget",
        metavar="SIZE",
        help="disk-cache size budget, e.g. 256M or 2G; least-recently-"
        "used entries are evicted to stay under it",
    )
    serve.add_argument(
        "--ready-file",
        metavar="FILE",
        help="write the bound address here once listening (lets "
        "scripts wait for startup and discover an ephemeral port)",
    )
    serve.add_argument(
        "--log-json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="structured request log: one JSON line per request "
        "(trace id, outcome, cache hit, queue wait, stage timings) "
        "appended to FILE, or stdout when no FILE is given",
    )
    serve.add_argument(
        "--window",
        type=int,
        default=256,
        metavar="N",
        help="rolling SLO window: error rate and p50/p95 latency "
        "gauges cover the last N requests (default 256)",
    )
    serve.add_argument(
        "--flight-slowest",
        type=int,
        default=16,
        metavar="K",
        help="flight recorder: retain full traces of the K slowest "
        "requests (default 16)",
    )
    serve.add_argument(
        "--flight-failed",
        type=int,
        default=32,
        metavar="K",
        help="flight recorder: retain full traces of the most recent "
        "K failed requests (default 32)",
    )

    top = add(
        "top", _cmd_top, "live terminal view of a running daemon"
    )
    top.add_argument(
        "addr",
        help="daemon address: host:port or http://host:port "
        "(e.g. 127.0.0.1:8752)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds between /metrics scrapes (default 2)",
    )
    top.add_argument(
        "--count",
        type=int,
        default=0,
        metavar="N",
        help="exit after N frames (0 = run until interrupted)",
    )

    flight = add(
        "flightrecorder",
        _cmd_flightrecorder,
        "dump a daemon's flight recorder (slowest + failed requests)",
    )
    flight.add_argument(
        "addr",
        help="daemon address: host:port or http://host:port",
    )
    flight.add_argument(
        "--json",
        action="store_true",
        help="print the full dump (spans, events, counters) as JSON",
    )

    bench = add(
        "bench", _cmd_bench, "regenerate a figure's data rows, or diff runs"
    )
    bench.add_argument(
        "figure", choices=["fig4", "fig13", "pipeline", "service", "diff"]
    )
    bench.add_argument(
        "benchmark",
        nargs="?",
        help="fig13: benchmark name; diff: the OLD (baseline) JSON file",
    )
    bench.add_argument(
        "against",
        nargs="?",
        help="(diff) the NEW JSON file to gate against the baseline",
    )
    bench.add_argument(
        "--json",
        metavar="FILE",
        help="(pipeline/service) also write the rows as JSON, e.g. "
        "BENCH_pipeline.json / BENCH_service.json",
    )
    bench.add_argument(
        "--concurrency",
        type=int,
        default=4,
        metavar="N",
        help="(service) loadgen client threads per workload (default 4)",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=8,
        metavar="N",
        help="(service) warm-pass replays of each workload (default 8)",
    )
    bench.add_argument(
        "--no-scaling",
        action="store_true",
        help="(service) skip the thread-vs-process executor scaling "
        "sweep (it boots six daemons, so quick local runs may want "
        "just the workload rows)",
    )
    bench.add_argument(
        "--max-regress",
        type=float,
        default=25.0,
        metavar="PCT",
        help="(diff) timing tolerance: fail when seconds grow or "
        "cache_speedup drops by more than PCT percent (default 25)",
    )
    bench.add_argument(
        "--counter-regress",
        type=float,
        default=None,
        metavar="PCT",
        help="(diff) separate tolerance for work counters "
        "(solver nodes, matches tried, cells); defaults to --max-regress",
    )
    bench.add_argument(
        "--verbose",
        action="store_true",
        help="(diff) list every compared metric, not only regressions",
    )

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReticleError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
