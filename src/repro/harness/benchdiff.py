"""Bench regression gating: diff two BENCH_pipeline.json payloads.

``reticle bench diff OLD.json NEW.json --max-regress <pct>`` compares
the rows of two pipeline-benchmark payloads (see
:func:`repro.harness.experiments.pipeline_rows`) keyed by
``(bench, size)`` and fails — nonzero exit — when the new run regressed
beyond tolerance.  CI runs it against the committed baseline so a PR
that quietly slows the pipeline down or inflates the solver's work is
caught at review time, not three PRs later.

What is gated, per row:

* ``seconds`` (cold end-to-end time) — regression when the new value
  exceeds the old by more than ``max_regress`` percent;
* ``cache_speedup``, ``scaling_efficiency``, ``speedup_vs_thread`` —
  regression when one *drops* by more than ``max_regress`` percent (a
  cache or an executor that stops paying off is a bug);
* growth counters (solver nodes, backtracks, matches tried, emitted
  cells) — same percentage tolerance, because they are the
  machine-independent proxy for algorithmic regressions.  Counter
  gating uses ``max(counter_regress or max_regress)`` so CI can keep
  timing tolerance loose (runner machines vary) while holding
  counters tight (they should be deterministic).

A row present in OLD but missing from NEW is always a failure (a
benchmark silently dropped is a regression in coverage); rows only in
NEW never fail the diff, but they are *always* logged with their
headline metrics — a freshly added variant row (``+portfolio``,
``+iselmemo``) carries no baseline and is therefore ungated, and that
fact must be visible in CI output rather than silently passing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Counters gated by the diff: machine-independent work measures whose
#: growth means the algorithm (not the machine) got slower.
GATED_COUNTERS = (
    "isel.matches_tried",
    "isel.index_skips",
    "isel.unique_trees",
    "isel.memo_hits",
    "place.solver_nodes",
    "place.backtracks",
    # Sublinearity gate for the device-scale (``xl``) rows: placement
    # search effort per emitted netlist cell must not grow.
    "place.nodes_per_cell_x1000",
    "codegen.cells",
    # Any worker-process crash during a bench run is a regression:
    # baseline rows carry the key at 0, so the first crash trips the
    # infinite-percent-growth gate.
    "service.worker_crashes",
)

#: Headline ratio metrics gated on *drops*: a speedup or a scaling
#: efficiency that stops paying off is a bug, so falling beyond
#: tolerance regresses while growth never does.
GATED_DROP_METRICS = (
    "cache_speedup",
    "scaling_efficiency",
    "speedup_vs_thread",
)


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric of one row."""

    bench: str
    size: int
    metric: str
    old: float
    new: float
    #: signed percent change, positive = worse (slower / more work)
    change_pct: float
    regressed: bool

    def describe(self) -> str:
        arrow = "WORSE" if self.regressed else "ok"
        return (
            f"{self.bench}/{self.size} {self.metric}: "
            f"{self.old:g} -> {self.new:g} "
            f"({self.change_pct:+.1f}%) [{arrow}]"
        )


@dataclass
class BenchDiff:
    """The outcome of comparing two benchmark payloads."""

    deltas: List[MetricDelta] = field(default_factory=list)
    missing: List[Tuple[str, int]] = field(default_factory=list)
    added: List[Tuple[str, int]] = field(default_factory=list)
    #: key -> headline-metric summary of each added (ungated) row, so
    #: fresh variant rows are visible in CI logs, never silent passes.
    added_detail: Dict[Tuple[str, int], str] = field(default_factory=dict)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "regressions": [d.describe() for d in self.regressions],
            "missing": [f"{b}/{s}" for b, s in self.missing],
            "added": [f"{b}/{s}" for b, s in self.added],
            "deltas": [
                {
                    "bench": d.bench,
                    "size": d.size,
                    "metric": d.metric,
                    "old": d.old,
                    "new": d.new,
                    "change_pct": d.change_pct,
                    "regressed": d.regressed,
                }
                for d in self.deltas
            ],
        }


def _rows_by_key(payload: Dict[str, object]) -> Dict[Tuple[str, int], Dict]:
    rows = payload.get("rows", [])
    return {(row["bench"], int(row["size"])): row for row in rows}


def _pct_change(old: float, new: float) -> float:
    """Percent change new vs old; 0 when old is 0 and new is too."""
    if old == 0:
        return 0.0 if new == 0 else float("inf")
    return (new - old) / old * 100.0


def diff_payloads(
    old: Dict[str, object],
    new: Dict[str, object],
    max_regress: float = 25.0,
    counter_regress: Optional[float] = None,
) -> BenchDiff:
    """Compare two pipeline-benchmark payloads row by row.

    ``max_regress`` is the timing tolerance in percent (``seconds`` may
    grow, ``cache_speedup`` may drop, by at most this much);
    ``counter_regress`` overrides it for the gated growth counters
    (defaults to the same value).
    """
    counter_tol = max_regress if counter_regress is None else counter_regress
    old_rows = _rows_by_key(old)
    new_rows = _rows_by_key(new)
    diff = BenchDiff()
    diff.missing = sorted(set(old_rows) - set(new_rows))
    diff.added = sorted(set(new_rows) - set(old_rows))
    for key in diff.added:
        row = new_rows[key]
        counters = row.get("counters", {}) or {}
        gated = ", ".join(
            f"{name}={counters[name]:g}"
            for name in GATED_COUNTERS
            if name in counters
        )
        summary = f"seconds={float(row.get('seconds', 0.0)):g}"
        if gated:
            summary += f", {gated}"
        diff.added_detail[key] = summary

    for key in sorted(set(old_rows) & set(new_rows)):
        bench, size = key
        old_row, new_row = old_rows[key], new_rows[key]

        old_s = float(old_row.get("seconds", 0.0))
        new_s = float(new_row.get("seconds", 0.0))
        change = _pct_change(old_s, new_s)
        diff.deltas.append(
            MetricDelta(
                bench=bench,
                size=size,
                metric="seconds",
                old=old_s,
                new=new_s,
                change_pct=change,
                regressed=change > max_regress,
            )
        )

        for metric in GATED_DROP_METRICS:
            old_sp = float(old_row.get(metric, 0.0))
            new_sp = float(new_row.get(metric, 0.0))
            if old_sp > 0:
                drop = _pct_change(old_sp, new_sp)
                diff.deltas.append(
                    MetricDelta(
                        bench=bench,
                        size=size,
                        metric=metric,
                        old=old_sp,
                        new=new_sp,
                        change_pct=drop,
                        # A ratio *drop* beyond tolerance regresses.
                        regressed=drop < -max_regress,
                    )
                )

        old_counters = old_row.get("counters", {}) or {}
        new_counters = new_row.get("counters", {}) or {}
        for name in GATED_COUNTERS:
            if name not in old_counters:
                continue
            old_c = float(old_counters[name])
            new_c = float(new_counters.get(name, 0.0))
            change = _pct_change(old_c, new_c)
            diff.deltas.append(
                MetricDelta(
                    bench=bench,
                    size=size,
                    metric=name,
                    old=old_c,
                    new=new_c,
                    change_pct=change,
                    regressed=change > counter_tol,
                )
            )
    return diff


def diff_files(
    old_path: str,
    new_path: str,
    max_regress: float = 25.0,
    counter_regress: Optional[float] = None,
) -> BenchDiff:
    """:func:`diff_payloads` over two JSON files on disk."""
    with open(old_path, "r", encoding="utf-8") as handle:
        old = json.load(handle)
    with open(new_path, "r", encoding="utf-8") as handle:
        new = json.load(handle)
    return diff_payloads(
        old, new, max_regress=max_regress, counter_regress=counter_regress
    )


def format_diff(diff: BenchDiff, verbose: bool = False) -> str:
    """Human summary: regressions (always), clean deltas (verbose)."""
    lines: List[str] = []
    for bench, size in diff.missing:
        lines.append(f"MISSING  {bench}/{size}: row dropped from new run")
    for bench, size in diff.added:
        detail = diff.added_detail.get((bench, size), "")
        suffix = f": {detail}" if detail else ""
        lines.append(
            f"ADDED    {bench}/{size} (not in baseline, not gated){suffix}"
        )
    for delta in diff.deltas:
        if delta.regressed or verbose:
            lines.append(delta.describe())
    verdict = "OK" if diff.ok else "REGRESSED"
    compared = len({(d.bench, d.size) for d in diff.deltas})
    lines.append(
        f"bench diff: {verdict} "
        f"({compared} rows compared, {len(diff.regressions)} regressions, "
        f"{len(diff.missing)} missing, {len(diff.added)} added)"
    )
    return "\n".join(lines)
