"""The experiment harness: regenerates every table and figure.

``repro.harness.flows`` runs one program through the Reticle pipeline
or the vendor simulator and scores it (compile seconds, critical path,
utilization); ``repro.harness.experiments`` sweeps the paper's
benchmark/size grid and produces the rows behind Figure 4 and
Figure 13.
"""

from repro.harness.flows import FlowScore, run_reticle, run_vendor
from repro.harness.experiments import (
    fig4_rows,
    fig13_rows,
    format_table,
    FIG13_BENCHMARKS,
)

__all__ = [
    "FlowScore",
    "run_reticle",
    "run_vendor",
    "fig4_rows",
    "fig13_rows",
    "format_table",
    "FIG13_BENCHMARKS",
]
