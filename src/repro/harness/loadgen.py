"""Load generator for the compile daemon, and BENCH_service.json.

:func:`run_loadgen` replays a workload of IR programs against a
running daemon at a configurable concurrency: N client threads, each
holding one keep-alive HTTP connection, issuing single-item
``POST /compile`` requests round-robin over the workload.  Per-request
latency lands in the existing :class:`~repro.obs.Histogram` machinery
(a ``loadgen.latency_s`` histogram on a private tracer), so the report
carries the same nearest-rank p50/p95 the rest of the repo uses.

:func:`service_rows` is the data behind ``BENCH_service.json``: it
boots an in-process daemon on a fresh cache directory, replays each
bench workload cold (misses, fills the shared tier) and warm (hits),
measures the process-per-compile baseline (one ``python -m repro
compile`` subprocess per program — what every compile cost before the
daemon existed), and emits one row per workload in the same shape
``reticle bench diff`` already gates: ``seconds`` (cold wall),
``cache_speedup`` (cold vs warm per-request), and counters.

:func:`scaling_rows` is the executor evidence: thread vs process
daemons at 1/2/4 workers replaying all-cold workloads (distinct
function names defeat the cache), each row carrying a gated
``scaling_efficiency`` and — for process rows — ``speedup_vs_thread``.
"""

from __future__ import annotations

import http.client
import json
import os
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReticleError
from repro.ir.printer import print_func
from repro.obs import Tracer, summarize
from repro.obs.expo import MetricFamily, parse_prometheus
from repro.serve.daemon import TRACE_HEADER
from repro.utils.pool import resolve_jobs, usable_cpus

#: The bench workloads the service trajectory replays: small enough to
#: keep the bench quick, varied enough to cover DSP (tensoradd) and
#: LUT-only (fsm) pipelines.
SERVICE_WORKLOADS: Dict[str, Sequence[Tuple[str, int]]] = {
    "mixed": (("tensoradd", 64), ("tensoradd", 128), ("fsm", 5)),
    "tensoradd": (("tensoradd", 64), ("tensoradd", 128)),
}

#: Default concurrency for the service bench rows and the CI smoke.
SERVICE_CONCURRENCY = 4


def workload_programs(
    spec: Sequence[Tuple[str, int]]
) -> List[Tuple[str, str]]:
    """(name, IR text) for each (bench, size) of a workload spec."""
    from repro.harness.experiments import _benchmark_funcs

    programs: List[Tuple[str, str]] = []
    for bench, size in spec:
        func = _benchmark_funcs(bench, size)["reticle"]
        programs.append((f"{bench}-{size}", print_func(func)))
    return programs


@dataclass
class LoadgenReport:
    """The outcome of one loadgen run against one daemon."""

    requests: int = 0
    errors: int = 0
    rejected: int = 0
    warm_hits: int = 0
    wall_seconds: float = 0.0
    #: program name -> the one Verilog text every response agreed on
    verilog: Dict[str, str] = field(default_factory=dict)
    #: latency summary: count/min/max/p50/p95 (seconds)
    latency: Dict[str, float] = field(default_factory=dict)
    #: every trace ID the daemon echoed back, one per request sent
    trace_ids: List[str] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        done = self.requests - self.rejected - self.errors
        return done / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def error_rate(self) -> float:
        """Errors over admitted requests (rejections are back-pressure,
        not failures, so they don't count against the rate)."""
        admitted = self.requests - self.rejected
        return self.errors / admitted if admitted > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "error_rate": round(self.error_rate, 4),
            "rejected": self.rejected,
            "warm_hits": self.warm_hits,
            "wall_seconds": round(self.wall_seconds, 6),
            "throughput_rps": round(self.throughput_rps, 2),
            "latency": self.latency,
            "trace_ids": list(self.trace_ids),
        }


def _url_host_port(base_url: str) -> Tuple[str, int]:
    if not base_url.startswith("http://"):
        raise ReticleError(
            f"loadgen needs an http:// URL, got {base_url!r}"
        )
    hostport = base_url[len("http://") :].rstrip("/")
    host, _, port = hostport.partition(":")
    return host, int(port or "80")


def post_compile(
    base_url: str,
    items: Sequence[Dict[str, object]],
    timeout: float = 120.0,
) -> Tuple[int, Dict[str, object]]:
    """One ``POST /compile`` batch; returns (status, decoded body)."""
    host, port = _url_host_port(base_url)
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = json.dumps({"requests": list(items)})
        connection.request(
            "POST",
            "/compile",
            body=body,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        return response.status, payload
    finally:
        connection.close()


def get_json(
    base_url: str, path: str, timeout: float = 30.0
) -> Tuple[int, Dict[str, object]]:
    """One GET of a daemon endpoint; returns (status, decoded body)."""
    host, port = _url_host_port(base_url)
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def scrape_metrics(
    base_url: str, timeout: float = 30.0
) -> Dict[str, MetricFamily]:
    """Fetch and parse a daemon's ``GET /metrics`` exposition."""
    host, port = _url_host_port(base_url)
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", "/metrics")
        response = connection.getresponse()
        text = response.read().decode("utf-8")
        if response.status != 200:
            raise ReticleError(
                f"GET /metrics answered {response.status}: {text[:200]!r}"
            )
        return parse_prometheus(text)
    finally:
        connection.close()


def metric_value(
    families: Dict[str, MetricFamily], name: str, default: float = 0.0
) -> float:
    """A family's scalar value (counter/gauge), ``default`` if absent."""
    family = families.get(name)
    if family is None:
        return default
    value = family.value()
    return value if value is not None else default


def run_loadgen(
    base_url: str,
    programs: Sequence[Tuple[str, str]],
    concurrency: int = SERVICE_CONCURRENCY,
    repeats: int = 1,
    target: str = "ultrascale",
    tracer: Optional[Tracer] = None,
    trace_prefix: str = "loadgen",
    verify_metrics: bool = False,
) -> LoadgenReport:
    """Replay ``programs`` (name, IR text) against a daemon.

    Issues ``len(programs) * repeats`` single-item compile requests
    from ``concurrency`` threads, each holding one keep-alive
    connection.  Every program's Verilog must come back identical on
    every repeat — a mismatch (a torn cache entry, a key collision)
    raises, because a load generator that shrugs at wrong answers is
    measuring the wrong thing.

    Every request carries a distinct ``X-Reticle-Trace-Id``
    (``{trace_prefix}-{job_index}``); the daemon must echo it in both
    the response header and payload, and the echoes land in
    ``report.trace_ids`` so a run can be cross-referenced against the
    daemon's structured log and flight recorder.  With
    ``verify_metrics`` the daemon's ``/metrics`` endpoint is scraped
    before and after the run and the ``service_requests`` counter
    delta must equal the admitted requests — end-to-end proof that the
    exposition counts what the client actually sent.
    """
    if not programs:
        raise ReticleError("loadgen needs at least one program")
    # ``concurrency == 0`` auto-sizes (RETICLE_JOBS env, else CPU
    # count); explicit values are clamped to the request count — more
    # client threads than requests would only idle.
    concurrency = resolve_jobs(
        concurrency, items=len(programs) * repeats
    )
    tracer = tracer if tracer is not None else Tracer()
    host, port = _url_host_port(base_url)
    jobs: List[Tuple[str, str]] = [
        programs[i % len(programs)]
        for i in range(len(programs) * repeats)
    ]
    report = LoadgenReport()
    mismatches: List[str] = []
    bad_echoes: List[str] = []

    def worker(
        worker_index: int,
    ) -> Tuple[int, int, int, int, Dict[str, str], List[str]]:
        connection = http.client.HTTPConnection(host, port, timeout=120.0)
        sent = errors = rejected = warm = 0
        seen: Dict[str, str] = {}
        echoes: List[str] = []
        try:
            for job_index in range(worker_index, len(jobs), concurrency):
                name, program = jobs[job_index]
                trace_id = f"{trace_prefix}-{job_index}"
                headers = {
                    "Content-Type": "application/json",
                    TRACE_HEADER: trace_id,
                }
                body = json.dumps(
                    {
                        "requests": [
                            {"program": program, "target": target}
                        ]
                    }
                )
                start = time.perf_counter()
                try:
                    connection.request(
                        "POST", "/compile", body=body, headers=headers
                    )
                    response = connection.getresponse()
                    payload = json.loads(response.read().decode("utf-8"))
                except (OSError, ValueError):
                    # Reconnect once; keep-alive sockets can die idle.
                    connection.close()
                    connection = http.client.HTTPConnection(
                        host, port, timeout=120.0
                    )
                    connection.request(
                        "POST", "/compile", body=body, headers=headers
                    )
                    response = connection.getresponse()
                    payload = json.loads(response.read().decode("utf-8"))
                tracer.observe(
                    "loadgen.latency_s", time.perf_counter() - start
                )
                sent += 1
                echo = response.getheader(TRACE_HEADER) or payload.get(
                    "trace_id", ""
                )
                echoes.append(echo)
                if echo != trace_id:
                    bad_echoes.append(f"{trace_id} -> {echo!r}")
                if response.status == 503:
                    rejected += 1
                    continue
                result = (payload.get("results") or [{}])[0]
                if response.status != 200 or not result.get("ok"):
                    errors += 1
                    continue
                if result.get("cached"):
                    warm += 1
                verilog = result.get("verilog", "")
                if name in seen:
                    if seen[name] != verilog:
                        mismatches.append(name)
                else:
                    seen[name] = verilog
        finally:
            connection.close()
        return sent, errors, rejected, warm, seen, echoes

    metrics_before = scrape_metrics(base_url) if verify_metrics else None
    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        outcomes = list(pool.map(worker, range(concurrency)))
    report.wall_seconds = time.perf_counter() - start

    for sent, errors, rejected, warm, seen, echoes in outcomes:
        report.requests += sent
        report.errors += errors
        report.rejected += rejected
        report.warm_hits += warm
        report.trace_ids.extend(echoes)
        for name, verilog in seen.items():
            if name in report.verilog:
                if report.verilog[name] != verilog:
                    mismatches.append(name)
            else:
                report.verilog[name] = verilog
    if mismatches:
        raise ReticleError(
            "loadgen observed non-identical Verilog for: "
            + ", ".join(sorted(set(mismatches)))
        )
    if bad_echoes:
        raise ReticleError(
            "daemon failed to echo trace IDs: "
            + ", ".join(sorted(bad_echoes)[:5])
        )
    report.latency = summarize(
        tracer.histograms.get("loadgen.latency_s", [])
    )
    if metrics_before is not None:
        metrics_after = scrape_metrics(base_url)
        delta = metric_value(
            metrics_after, "service_requests"
        ) - metric_value(metrics_before, "service_requests")
        admitted = report.requests - report.rejected
        if int(delta) != admitted:
            raise ReticleError(
                f"daemon counted {int(delta)} requests in /metrics but "
                f"loadgen had {admitted} admitted "
                f"({report.requests} sent, {report.rejected} rejected)"
            )
    return report


def process_per_compile_seconds(
    program_text: str, runs: int = 2, target: str = "ultrascale"
) -> float:
    """Seconds per compile of the pre-daemon model: one process each.

    Spawns ``python -m repro compile`` on the program ``runs`` times
    and returns the *fastest* run — the most favourable baseline the
    old model can claim (warm OS page cache, no import noise), which
    makes the daemon's speedup figure conservative.
    """
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    best = float("inf")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "prog.ret")
        with open(path, "w") as handle:
            handle.write(program_text)
        out = os.path.join(tmp, "out.v")
        for _ in range(runs):
            start = time.perf_counter()
            subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "compile",
                    path,
                    "--target",
                    target,
                    "-o",
                    out,
                ],
                check=True,
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            best = min(best, time.perf_counter() - start)
    return best


def service_rows(
    workloads: Optional[Dict[str, Sequence[Tuple[str, int]]]] = None,
    concurrency: int = SERVICE_CONCURRENCY,
    repeats: int = 8,
    workers: int = SERVICE_CONCURRENCY,
    baseline_runs: int = 2,
) -> List[dict]:
    """One BENCH_service.json row per workload.

    Each row records the cold replay (every program a miss, filling
    the shared disk tier), the warm replay (``repeats`` passes of
    hits at ``concurrency``), the per-request cold/warm
    ``cache_speedup`` the bench gate already understands, daemon-side
    counters, and the process-per-compile baseline with the daemon's
    ``warm_speedup_vs_process`` headline.
    """
    from repro.passes import CompileCache
    from repro.serve import CompileService, DaemonThread, ReticleDaemon

    workloads = workloads if workloads is not None else SERVICE_WORKLOADS
    rows: List[dict] = []
    for workload_name, spec in workloads.items():
        programs = workload_programs(spec)
        with tempfile.TemporaryDirectory() as cache_dir:
            service = CompileService(
                cache=CompileCache(cache_dir=cache_dir)
            )
            daemon = ReticleDaemon(
                service=service,
                workers=workers,
                queue_limit=max(64, concurrency * 4),
            )
            with DaemonThread(daemon) as handle:
                cold = run_loadgen(
                    handle.base_url,
                    programs,
                    concurrency=concurrency,
                    repeats=1,
                )
                warm = run_loadgen(
                    handle.base_url,
                    programs,
                    concurrency=concurrency,
                    repeats=repeats,
                )
                stats = service.stats()
        if cold.errors or warm.errors:
            raise ReticleError(
                f"service bench workload {workload_name!r} had errors"
            )
        if warm.warm_hits < warm.requests:
            raise ReticleError(
                f"service bench workload {workload_name!r}: "
                f"{warm.requests - warm.warm_hits} warm-pass requests "
                "missed the cache"
            )
        baseline_s = process_per_compile_seconds(
            programs[0][1], runs=baseline_runs
        )
        cold_per_request = cold.wall_seconds / max(cold.requests, 1)
        warm_per_request = warm.wall_seconds / max(warm.requests, 1)
        warm_rps = warm.throughput_rps
        rows.append(
            {
                "bench": f"service-{workload_name}",
                "size": concurrency,
                # cold wall-clock is the row's gated "seconds"
                "seconds": round(cold.wall_seconds, 6),
                "warm_seconds": round(warm.wall_seconds, 6),
                "cache_speedup": round(
                    cold_per_request / max(warm_per_request, 1e-9), 1
                ),
                "requests": warm.requests,
                "throughput_rps": round(warm_rps, 2),
                "p50_ms": round(warm.latency["p50"] * 1000, 3),
                "p95_ms": round(warm.latency["p95"] * 1000, 3),
                "baseline_process_s": round(baseline_s, 6),
                "warm_speedup_vs_process": round(
                    baseline_s / max(warm_per_request, 1e-9), 1
                ),
                "counters": stats["counters"],
                "gauges": stats["gauges"],
            }
        )
    return rows


#: Worker counts the executor-scaling bench sweeps.
SCALING_WORKER_COUNTS = (1, 2, 4)


def scaling_programs(
    count: int, size: int = 64, tag: str = ""
) -> List[Tuple[str, str]]:
    """``count`` cold programs: one bench function, ``count`` names.

    Renaming the function changes the canonical IR text and therefore
    the content-addressed cache key, so every request is a genuine
    cold compile — the scaling bench measures compile throughput, not
    cache hit latency, without needing a way to disable the cache.
    """
    from repro.harness.experiments import _benchmark_funcs

    base = _benchmark_funcs("tensoradd", size)["reticle"]
    text = print_func(base)
    head = f"def {base.name}("
    programs: List[Tuple[str, str]] = []
    for index in range(count):
        name = f"{base.name}_{tag}{index}"
        programs.append((name, text.replace(head, f"def {name}(", 1)))
    return programs


def scaling_rows(
    worker_counts: Sequence[int] = SCALING_WORKER_COUNTS,
    requests_per_worker: int = 3,
    size: int = 64,
) -> List[dict]:
    """Thread-vs-process throughput scaling rows (the GIL evidence).

    For each executor and worker count, boots a fresh daemon on a
    fresh cache directory and replays ``workers * requests_per_worker``
    *distinct* programs (every request a cold compile, see
    :func:`scaling_programs`).  Each row records:

    * ``scaling_efficiency`` — throughput at N workers over N times
      the same executor's 1-worker throughput (1.0 = perfect linear
      scaling; the thread executor pins near 1/N on CPU-bound
      compiles because of the GIL) — gated by ``bench diff``;
    * ``speedup_vs_thread`` (process rows) — process throughput over
      thread throughput at the same worker count;
    * ``cpus`` — the machine's usable CPU count, so a 1-CPU runner's
      flat scaling reads as the hardware limit it is, not a bug.

    Counters always carry ``service.worker_crashes`` (0 when clean) so
    the bench-diff counter gate arms against any future crash.
    """
    from repro.passes import CompileCache
    from repro.serve import CompileService, DaemonThread, ReticleDaemon

    rows: List[dict] = []
    base_rps: Dict[str, float] = {}
    thread_rps: Dict[int, float] = {}
    # Thread executor first so process rows can cite it.
    for executor in ("thread", "process"):
        for workers in worker_counts:
            programs = scaling_programs(
                workers * requests_per_worker,
                size=size,
                tag=f"{executor}{workers}w",
            )
            with tempfile.TemporaryDirectory() as cache_dir:
                service = CompileService(
                    cache=CompileCache(cache_dir=cache_dir)
                )
                daemon = ReticleDaemon(
                    service=service,
                    workers=workers,
                    executor=executor,
                    queue_limit=max(64, len(programs) * 2),
                )
                with DaemonThread(daemon) as handle:
                    report = run_loadgen(
                        handle.base_url,
                        programs,
                        concurrency=workers * 2,
                        repeats=1,
                        trace_prefix=f"scaling-{executor}-{workers}",
                    )
                    stats = service.stats()
            if report.errors:
                raise ReticleError(
                    f"scaling bench ({executor}, {workers} workers) "
                    f"had {report.errors} errors"
                )
            if report.warm_hits:
                raise ReticleError(
                    f"scaling bench ({executor}, {workers} workers) "
                    f"saw {report.warm_hits} warm hits; programs were "
                    "meant to be distinct cold compiles"
                )
            rps = report.throughput_rps
            if workers == min(worker_counts):
                base_rps[executor] = rps
            if executor == "thread":
                thread_rps[workers] = rps
            counters = dict(stats["counters"])
            counters.setdefault("service.worker_crashes", 0)
            row = {
                "bench": f"service-scaling-{executor}",
                "size": workers,
                "seconds": round(report.wall_seconds, 6),
                "requests": report.requests,
                "throughput_rps": round(rps, 2),
                "scaling_efficiency": round(
                    rps
                    / max(
                        base_rps[executor]
                        * (workers / min(worker_counts)),
                        1e-9,
                    ),
                    3,
                ),
                "p50_ms": round(report.latency["p50"] * 1000, 3),
                "p95_ms": round(report.latency["p95"] * 1000, 3),
                "cpus": usable_cpus(),
                "counters": counters,
                "gauges": stats["gauges"],
            }
            if executor == "process" and workers in thread_rps:
                row["speedup_vs_thread"] = round(
                    rps / max(thread_rps[workers], 1e-9), 2
                )
            rows.append(row)
    return rows


def scaling_table_rows(rows: Sequence[dict]) -> List[dict]:
    """Flatten executor-scaling rows for ``format_table``."""
    flat: List[dict] = []
    for row in rows:
        if "scaling_efficiency" not in row:
            continue
        flat.append(
            {
                "bench": row["bench"],
                "workers": row["size"],
                "requests": row["requests"],
                "seconds": row["seconds"],
                "rps": row["throughput_rps"],
                "efficiency": row["scaling_efficiency"],
                "vs_thread": row.get("speedup_vs_thread", "-"),
                "cpus": row["cpus"],
            }
        )
    return flat


def service_table_rows(rows: Sequence[dict]) -> List[dict]:
    """Flatten service rows for :func:`~.experiments.format_table`."""
    flat: List[dict] = []
    for row in rows:
        if "warm_seconds" not in row:
            continue  # executor-scaling rows have their own table
        flat.append(
            {
                "bench": row["bench"],
                "concurrency": row["size"],
                "cold_s": row["seconds"],
                "warm_s": row["warm_seconds"],
                "rps": row["throughput_rps"],
                "p50_ms": row["p50_ms"],
                "p95_ms": row["p95_ms"],
                "proc_s": row["baseline_process_s"],
                "speedup": row["warm_speedup_vs_process"],
            }
        )
    return flat


def write_bench_service(
    path: str, rows: Optional[Sequence[dict]] = None
) -> dict:
    """Write the service trajectory to ``path`` (JSON); returns it."""
    payload = {
        "figure": "service",
        "device": "xczu3eg",
        "rows": (
            list(rows)
            if rows is not None
            else service_rows() + scaling_rows()
        ),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload
