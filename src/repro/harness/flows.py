"""Running and scoring one program through either flow."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.compiler import CompileMetrics, ReticleCompiler
from repro.ir.ast import Func
from repro.netlist.core import Netlist
from repro.netlist.stats import resource_counts
from repro.obs import Tracer
from repro.passes import CompileCache
from repro.place.device import Device, xczu3eg
from repro.timing.sta import analyze_netlist
from repro.vendor.toolchain import VendorOptions, VendorToolchain


@dataclass(frozen=True)
class FlowScore:
    """What the paper's Figure 13 reports, for one compile.

    ``stage_seconds`` carries the per-stage breakdown of
    ``compile_seconds`` when the flow is instrumented (the Reticle
    pipeline); the vendor simulator reports only the total.
    """

    lang: str           # "base" | "hint" | "reticle"
    compile_seconds: float
    critical_ps: int
    fmax_mhz: float
    luts: int
    dsps: int
    ffs: int
    stage_seconds: Optional[Dict[str, float]] = None

    @property
    def runtime_ns(self) -> float:
        return self.critical_ps / 1000.0


def _score(
    lang: str,
    netlist: Netlist,
    seconds: float,
    metrics: Optional[CompileMetrics] = None,
) -> FlowScore:
    counts = resource_counts(netlist)
    report = analyze_netlist(netlist)
    return FlowScore(
        lang=lang,
        compile_seconds=seconds,
        critical_ps=report.critical_ps,
        fmax_mhz=report.fmax_mhz,
        luts=counts.luts,
        dsps=counts.dsps,
        ffs=counts.ffs,
        stage_seconds=dict(metrics.stages) if metrics is not None else None,
    )


def run_reticle(
    func: Func,
    device: Optional[Device] = None,
    compiler: Optional[ReticleCompiler] = None,
    tracer: Optional[Tracer] = None,
    cache: Optional[CompileCache] = None,
) -> FlowScore:
    """Compile with the Reticle pipeline and score the result.

    ``cache`` (used when no ``compiler`` is given) lets sweeps that
    revisit identical workloads — Figure 13 regeneration, ablations —
    reuse memoized compiles; a warm hit scores its (tiny) lookup time.
    """
    if compiler is None:
        compiler = ReticleCompiler(
            device=device if device else xczu3eg(), cache=cache
        )
    result = compiler.compile(func, tracer=tracer)
    return _score("reticle", result.netlist, result.seconds, result.metrics)


def run_vendor(
    func: Func,
    hints: bool,
    device: Optional[Device] = None,
    moves_per_cell: int = 24,
    effort: int = 2,
    place: bool = True,
) -> FlowScore:
    """Compile with the vendor-toolchain simulator and score it."""
    toolchain = VendorToolchain(
        device if device else xczu3eg(),
        VendorOptions(
            use_dsp_hints=hints, effort=effort, moves_per_cell=moves_per_cell
        ),
    )
    result = toolchain.compile(func) if place else toolchain.synthesize(func)
    return _score("hint" if hints else "base", result.netlist, result.seconds)
