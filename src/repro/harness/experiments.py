"""Sweeps reproducing the paper's figures (Section 7).

Figure 4: DSP/LUT utilization of the behavioral (hinted, scalar)
program versus the structural vectorized program, over loop bounds
N in {8..1024}, on a device with 360 DSPs.

Figure 13: compile-time speedup, run-time speedup, and utilization for
the three benchmarks (tensoradd, tensordot, fsm) at four sizes each,
across the three languages (base, hint, reticle).
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.compiler import ReticleCompiler
from repro.frontend.fsm import fsm
from repro.fuzz.generator import device_filling_func, edit_one_tree
from repro.passes import CompileCache
from repro.frontend.tensor import tensoradd_scalar, tensoradd_vector, tensordot
from repro.harness.flows import FlowScore, run_reticle, run_vendor
from repro.ir.ast import Func
from repro.place.device import Device, xczu3eg

FIG4_SIZES = (8, 16, 32, 64, 128, 256, 512, 1024)
FIG13_SIZES: Dict[str, Sequence] = {
    "tensoradd": (64, 128, 256, 512),
    "tensordot": (3, 9, 18, 36),
    "fsm": (3, 5, 7, 9),
}
FIG13_BENCHMARKS = tuple(FIG13_SIZES)

# The per-stage timing trajectory (BENCH_pipeline.json) samples a
# light subset of the Figure 13 sizes so it stays cheap to regenerate.
BENCH_PIPELINE_SIZES: Dict[str, Sequence] = {
    "tensoradd": (64, 256),
    "tensordot": (9,),
    "fsm": (5, 9),
}

#: The placement-portfolio configuration the ``<bench>+portfolio``
#: rows exercise: the greedy-first preset racing on two threads.  Only
#: the largest size of each benchmark gets a portfolio row — that is
#: where placement dominates and the portfolio pays for its pool.
BENCH_PORTFOLIO_JOBS = 2
BENCH_PORTFOLIO_PRESET = "throughput"

#: The instruction-selection configuration the ``<bench>+iselmemo``
#: rows exercise: the cross-tree cover memo (the default) plus a
#: two-worker fan-out over distinct tree shapes.  Each row also
#: records the naive matcher's (``isel_memo=False``) cold ``select``
#: time, so ``select_speedup`` pins the memo's win in the trajectory.
BENCH_ISEL_JOBS = 2

#: The device-scale (``xl``) rows: device-filling programs of these
#: netlist-cell targets (:func:`repro.fuzz.generator.
#: device_filling_func`), compiled with region-sharded placement on
#: the placement pool.  The largest size additionally gets an
#: ``xl+reuse`` row — a one-tree edit recompiled with incremental
#: placement reuse, the repo's below-function-granularity
#: recompilation trajectory.
XL_SIZES = (10_000, 14_000, 20_000)
XL_SHARDS = 3
XL_JOBS = 4
XL_SEED = 2026

#: The multi-function executor rows (``xlmulti`` / ``xlmulti+procexec``):
#: the same device-filling functions through ``compile_prog`` on the
#: thread tier and on the persistent process pool, timed end to end
#: (process-pool boot included — that is what a cold ``reticle compile
#: --executor process`` pays).
XLMULTI_FUNCS = 4
XLMULTI_CELLS = 2_500


def _benchmark_funcs(bench: str, size) -> Dict[str, Func]:
    """The per-language programs for one benchmark instance.

    ``tensoradd`` follows the paper exactly: the Reticle program is
    vectorized, the baselines are scalar (with and without hints).
    ``tensordot`` and ``fsm`` use one program for all three flows (the
    hint/base difference is the vendor's option, matching directives).
    """
    if bench == "tensoradd":
        return {
            "reticle": tensoradd_vector(size),
            "base": tensoradd_scalar(size, dsp_hint=False),
            "hint": tensoradd_scalar(size, dsp_hint=True),
        }
    if bench == "tensordot":
        func = tensordot(arrays=5, size=size)
        return {"reticle": func, "base": func, "hint": func}
    if bench == "fsm":
        func = fsm(size)
        return {"reticle": func, "base": func, "hint": func}
    raise ValueError(f"unknown benchmark: {bench!r}")


def fig13_rows(
    bench: str,
    sizes: Optional[Iterable] = None,
    device: Optional[Device] = None,
    moves_per_cell: int = 24,
    progress: Optional[Callable[[str], None]] = None,
) -> List[dict]:
    """One row per (size, lang): the data behind one Figure 13 panel."""
    device = device if device is not None else xczu3eg()
    rows: List[dict] = []
    for size in sizes if sizes is not None else FIG13_SIZES[bench]:
        funcs = _benchmark_funcs(bench, size)
        scores: Dict[str, FlowScore] = {}
        scores["reticle"] = run_reticle(funcs["reticle"], device=device)
        for lang in ("base", "hint"):
            scores[lang] = run_vendor(
                funcs[lang],
                hints=(lang == "hint"),
                device=device,
                moves_per_cell=moves_per_cell,
            )
        reticle = scores["reticle"]
        for lang in ("base", "hint", "reticle"):
            score = scores[lang]
            rows.append(
                {
                    "bench": bench,
                    "size": size,
                    "lang": lang,
                    "compile_s": round(score.compile_seconds, 4),
                    "critical_ns": round(score.runtime_ns, 3),
                    "fmax_mhz": round(score.fmax_mhz, 1),
                    "luts": score.luts,
                    "dsps": score.dsps,
                    # Reticle's advantage over this language (paper's
                    # speedup panels; 1.0 on the reticle rows).
                    "compile_speedup": round(
                        score.compile_seconds
                        / max(reticle.compile_seconds, 1e-9),
                        2,
                    ),
                    "runtime_speedup": round(
                        score.critical_ps / reticle.critical_ps, 3
                    ),
                }
            )
        if progress is not None:
            progress(f"{bench} size {size} done")
    return rows


def fig4_rows(
    sizes: Iterable[int] = FIG4_SIZES,
    device: Optional[Device] = None,
) -> List[dict]:
    """One row per (size, style): the data behind Figure 4.

    ``behavioral`` is the hinted scalar program through vendor
    synthesis (Figure 3's program); ``structural`` is the
    hand-optimized equivalent — the vectorized program through the
    Reticle pipeline.  Only utilization is reported, so neither flow
    runs placement here.
    """
    device = device if device is not None else xczu3eg()
    rows: List[dict] = []
    for size in sizes:
        behavioral = run_vendor(
            tensoradd_scalar(size, dsp_hint=True),
            hints=True,
            device=device,
            place=False,
        )
        structural = run_reticle(tensoradd_vector(size), device=device)
        for style, score in (
            ("behavioral", behavioral),
            ("structural", structural),
        ):
            rows.append(
                {
                    "size": size,
                    "style": style,
                    "dsps": score.dsps,
                    "luts": score.luts,
                }
            )
    return rows


def pipeline_rows(
    benches: Optional[Iterable[str]] = None,
    sizes: Optional[Dict[str, Sequence]] = None,
    device: Optional[Device] = None,
    cache: Optional[CompileCache] = None,
    portfolio: bool = True,
    iselmemo: bool = True,
    xl: bool = True,
) -> List[dict]:
    """Per-stage compile telemetry for the Figure 13 workloads.

    One row per (bench, size): the Reticle-flow program's cold-compile
    stage durations plus every counter and gauge the pipeline
    recorded, the warm (content-addressed cache hit) recompile time,
    and the merged ``cache.*`` counters of both compiles.  This is the
    data behind ``BENCH_pipeline.json``; the warm/cold pair is the
    repo's cache-speedup trajectory.

    With ``portfolio`` (default) the largest size of every benchmark
    additionally gets a ``<bench>+portfolio`` row: the same program
    compiled with the placement portfolio
    (:data:`BENCH_PORTFOLIO_PRESET` on :data:`BENCH_PORTFOLIO_JOBS`
    threads), reporting ``place_seconds`` and the ``place_speedup``
    over the matching serial row.

    With ``iselmemo`` (default) the largest size of every benchmark
    also gets a ``<bench>+iselmemo`` row: the memoized selector
    fanning distinct tree shapes over :data:`BENCH_ISEL_JOBS` workers,
    reporting ``select_seconds``, the naive matcher's
    ``select_naive_seconds``, and their ratio ``select_speedup``.

    With ``xl`` (default) the device-scale rows run too: one ``xl``
    row per :data:`XL_SIZES` entry — a device-filling program placed
    with :data:`XL_SHARDS` region shards on :data:`XL_JOBS` threads —
    plus one ``xl+reuse`` row, where the largest program is recompiled
    after a one-tree edit with incremental placement reuse (the
    ``place.reuse_pct`` gauge records how much replayed).  Every row
    carries ``place.nodes_per_cell_x1000``, the solver-effort-per-cell
    counter the bench gate holds flat as programs grow.  The ``xl``
    block also emits the executor pair — ``xlmulti`` (thread tier) and
    ``xlmulti+procexec`` (persistent process pool) — timing
    ``compile_prog`` over :data:`XLMULTI_FUNCS` cold device-filling
    functions, with ``exec_speedup`` on the process row.
    """
    device = device if device is not None else xczu3eg()
    sizes = sizes if sizes is not None else BENCH_PIPELINE_SIZES
    cache = cache if cache is not None else CompileCache()
    compiler = ReticleCompiler(device=device, cache=cache)
    rows: List[dict] = []

    def run_pair(
        compiler: ReticleCompiler,
        bench: str,
        size,
        func: Optional[Func] = None,
    ) -> dict:
        if func is None:
            func = _benchmark_funcs(bench, size)["reticle"]
        cold = compiler.compile(func)
        # Drain the streaming emitter through the cold trace before
        # snapshotting, so ``codegen.chunks`` lands in the row
        # (``metrics.counters`` is a snapshot taken at compile time).
        for _ in cold.verilog_chunks():
            pass
        warm = compiler.compile(func)
        assert cold.metrics is not None and warm.metrics is not None
        assert cold.trace is not None
        assert warm.cached, "second compile must hit the cache"
        counters = dict(cold.trace.counters)
        for name, value in warm.metrics.counters.items():
            counters[name] = counters.get(name, 0) + value
        cells = counters.get("codegen.cells", 0)
        if cells:
            # The sublinearity gate: placement search effort per
            # emitted netlist cell, in thousandths so the JSON stays
            # integral.  ``bench diff`` refuses regressions here.
            counters["place.nodes_per_cell_x1000"] = round(
                1000 * counters.get("place.solver_nodes", 0) / cells
            )
        return {
            "bench": bench,
            "size": size,
            "seconds": round(cold.seconds, 6),
            "warm_seconds": round(warm.seconds, 9),
            "cache_speedup": round(
                cold.seconds / max(warm.seconds, 1e-9), 1
            ),
            "stages": {
                stage: round(duration, 6)
                for stage, duration in cold.metrics.stages.items()
            },
            "counters": counters,
            "gauges": dict(cold.metrics.gauges),
        }

    selected = tuple(benches) if benches is not None else tuple(sizes)
    for bench in selected:
        for size in sizes[bench]:
            rows.append(run_pair(compiler, bench, size))

    if portfolio:
        racer = ReticleCompiler(
            device=device,
            cache=cache,
            place_jobs=BENCH_PORTFOLIO_JOBS,
            place_portfolio=BENCH_PORTFOLIO_PRESET,
        )
        # Spawn the placement pool's threads up front: the executor
        # lives for the compiler's lifetime, so its one-time spin-up
        # is session overhead, not cold-compile placement time.
        pool = racer.placer._executor()
        if pool is not None:
            for future in [
                pool.submit(lambda: None)
                for _ in range(BENCH_PORTFOLIO_JOBS)
            ]:
                future.result()
        serial_rows = {(row["bench"], row["size"]): row for row in rows}
        for bench in selected:
            size = max(sizes[bench])
            row = run_pair(racer, bench, size)
            row["bench"] = f"{bench}+portfolio"
            place_seconds = row["stages"].get("place", 0.0)
            row["place_seconds"] = round(place_seconds, 6)
            baseline = serial_rows.get((bench, size))
            if baseline is not None and place_seconds > 0:
                row["place_speedup"] = round(
                    baseline["stages"].get("place", 0.0) / place_seconds, 2
                )
            rows.append(row)

    if iselmemo:
        memoized = ReticleCompiler(
            device=device, cache=cache, isel_jobs=BENCH_ISEL_JOBS
        )
        naive = ReticleCompiler(device=device, cache=cache, isel_memo=False)
        # As with the placement pool above, spawn the selector's
        # workers up front: pool spin-up is session overhead, not
        # cold-compile selection time.
        pool = memoized.selector._executor()
        if pool is not None:
            for future in [
                pool.submit(lambda: None) for _ in range(BENCH_ISEL_JOBS)
            ]:
                future.result()
        for bench in selected:
            size = max(sizes[bench])
            func = _benchmark_funcs(bench, size)["reticle"]
            naive_cold = naive.compile(func)
            assert naive_cold.metrics is not None
            naive_select = naive_cold.metrics.stages.get("select", 0.0)
            row = run_pair(memoized, bench, size)
            row["bench"] = f"{bench}+iselmemo"
            select_seconds = row["stages"].get("select", 0.0)
            row["select_seconds"] = round(select_seconds, 6)
            row["select_naive_seconds"] = round(naive_select, 6)
            if select_seconds > 0:
                row["select_speedup"] = round(
                    naive_select / select_seconds, 2
                )
            rows.append(row)

    if xl:
        sharded = ReticleCompiler(
            device=device,
            cache=cache,
            place_jobs=XL_JOBS,
            place_shards=XL_SHARDS,
        )
        # Pool spin-up is session overhead, not placement time.
        pool = sharded.placer._executor()
        if pool is not None:
            for future in [
                pool.submit(lambda: None) for _ in range(XL_JOBS)
            ]:
                future.result()
        for size in XL_SIZES:
            func = device_filling_func(
                seed=XL_SEED, cells=size, name=f"xl{size}"
            )
            rows.append(run_pair(sharded, "xl", size, func=func))
        # The incremental-recompile row: prime the reuse bank with the
        # unedited program (its compile is deliberately off the row),
        # then measure a one-tree edit cold — placement replays every
        # cluster but the new one.
        largest = max(XL_SIZES)
        reuser = ReticleCompiler(
            device=device,
            cache=cache,
            place_jobs=XL_JOBS,
            place_shards=XL_SHARDS,
            place_reuse=True,
        )
        base = device_filling_func(
            seed=XL_SEED, cells=largest, name=f"xl{largest}"
        )
        reuser.compile(base)
        rows.append(
            run_pair(
                reuser, "xl+reuse", largest, func=edit_one_tree(base)
            )
        )
        # Multi-function executor rows: the same program through
        # ``compile_prog`` on each execution tier.  No cache — both
        # rows measure genuinely cold compiles of identical functions.
        import time as _time

        from repro.obs import Tracer
        from repro.utils.pool import usable_cpus

        multi_funcs = [
            device_filling_func(
                seed=XL_SEED + index,
                cells=XLMULTI_CELLS,
                name=f"xlm{index}",
            )
            for index in range(XLMULTI_FUNCS)
        ]
        thread_seconds: Optional[float] = None
        for executor in ("thread", "process"):
            multi_compiler = ReticleCompiler(device=device)
            tracer = Tracer()
            start = _time.perf_counter()
            multi_compiler.compile_prog(
                multi_funcs,
                tracer=tracer,
                jobs=XLMULTI_FUNCS,
                executor=executor,
            )
            seconds = _time.perf_counter() - start
            counters = dict(tracer.counters)
            cells = counters.get("codegen.cells", 0)
            if cells:
                counters["place.nodes_per_cell_x1000"] = round(
                    1000 * counters.get("place.solver_nodes", 0) / cells
                )
            row = {
                "bench": (
                    "xlmulti+procexec"
                    if executor == "process"
                    else "xlmulti"
                ),
                "size": XLMULTI_FUNCS * XLMULTI_CELLS,
                "seconds": round(seconds, 6),
                "functions": XLMULTI_FUNCS,
                "jobs": XLMULTI_FUNCS,
                "cpus": usable_cpus(),
                "stages": {
                    name[len("stage.") :]: round(sum(values), 6)
                    for name, values in tracer.histograms.items()
                    if name.startswith("stage.")
                },
                "counters": counters,
                "gauges": dict(tracer.gauges),
            }
            if executor == "thread":
                thread_seconds = seconds
            elif thread_seconds:
                row["exec_speedup"] = round(
                    thread_seconds / max(seconds, 1e-9), 2
                )
            rows.append(row)
    return rows


def pipeline_table_rows(rows: Sequence[dict]) -> List[dict]:
    """Flatten pipeline rows for :func:`format_table`."""
    flat: List[dict] = []
    for row in rows:
        entry = {
            "bench": row["bench"],
            "size": row["size"],
            "total_ms": round(row["seconds"] * 1000, 3),
        }
        for stage, seconds in row["stages"].items():
            entry[f"{stage}_ms"] = round(seconds * 1000, 3)
        # Rows without a warm recompile (the xlmulti executor rows
        # run uncached) still need the columns: format_table sizes
        # every row by the first row's keys.
        entry["warm_us"] = (
            round(row["warm_seconds"] * 1e6, 1)
            if "warm_seconds" in row
            else ""
        )
        entry["cache_speedup"] = row.get("cache_speedup", "")
        entry["exec_speedup"] = row.get("exec_speedup", "")
        entry["place_speedup"] = row.get("place_speedup", "")
        entry["select_speedup"] = row.get("select_speedup", "")
        entry["solver_nodes"] = row["counters"].get("place.solver_nodes", 0)
        entry["dsps"] = row["counters"].get("codegen.dsps", 0)
        entry["luts"] = row["counters"].get("codegen.luts", 0)
        flat.append(entry)
    return flat


def write_bench_pipeline(
    path: str, rows: Optional[Sequence[dict]] = None
) -> dict:
    """Write the per-stage timing trajectory to ``path`` (JSON).

    Returns the written payload.  This seeds the repo's perf
    trajectory: successive revisions append comparable snapshots.
    """
    payload = {
        "figure": "pipeline",
        "device": "xczu3eg",
        "rows": list(rows) if rows is not None else pipeline_rows(),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload


def format_table(rows: Sequence[dict]) -> str:
    """Render result rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0])
    widths = {
        column: max(len(column), *(len(str(row[column])) for row in rows))
        for column in columns
    }
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    divider = "  ".join("-" * widths[column] for column in columns)
    lines = [header, divider]
    for row in rows:
        lines.append(
            "  ".join(str(row[column]).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)
